"""Periodic, atomic durability for resident service jobs.

PR 8's daemon persists job state only on graceful shutdown or explicit
flush: a SIGKILL, OOM-kill, or power loss silently discards every window
folded since startup.  This module closes that gap with three pieces:

* :class:`CheckpointPolicy` — *when* to checkpoint: every N ingested
  batches and/or every S seconds, evaluated at request boundaries (the
  engine's state is only ever consistent between requests, so a checkpoint
  can never capture a half-folded batch).
* :class:`JobCheckpointer` — *how*: each checkpoint is one
  :meth:`~repro.service.engine.JobEngine.snapshot` payload (exact float
  bytes of the full fold state plus the acked ingest sequence number)
  written as a generation under ``checkpoints/<config_hash>/`` in the
  :class:`~repro.campaigns.store.ResultStore`, with the store's temp-file +
  ``os.replace`` atomicity and size+SHA-256 pinning.  A write failure is
  **contained**: the daemon logs a WARNING, keeps serving, and retries at
  the next cadence point — durability degrades, availability does not.
* :func:`resume_job` — *recovery*: load the newest checkpoint generation
  that verifies (torn/corrupted ones are skipped with a WARNING by
  :meth:`~repro.campaigns.store.ResultStore.latest_checkpoint`), restore
  the engine, and report the resumed sequence number so feeders can replay
  everything after it.

The correctness contract is the repo's headline invariant, extended to
crashes: checkpoint state is bitwise-exact and batch replay is
deterministic, so *crash → restore → replay unacked batches* produces
pooled vectors and alarm sequences ``tobytes()``-identical to a run that
was never interrupted (``tests/test_service_checkpoint.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro._util.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.campaigns.store import ResultStore
    from repro.service.jobs import Job

__all__ = ["CheckpointPolicy", "JobCheckpointer", "resume_job"]

_logger = get_logger("service.checkpoint")


@dataclass(frozen=True)
class CheckpointPolicy:
    """When the daemon checkpoints a job (both triggers may be armed).

    ``every_batches`` fires once at least that many batches folded since
    the job's last checkpoint; ``every_seconds`` once that much wall time
    passed.  Both are evaluated after each successful ingest request —
    there is no background timer, so an idle job is not rewritten (its
    last checkpoint already covers its state).  A policy with neither
    trigger still checkpoints on explicit flushes and graceful shutdown.
    """

    every_batches: int | None = None
    every_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.every_batches is not None and int(self.every_batches) < 1:
            raise ValueError(f"every_batches must be >= 1, got {self.every_batches}")
        if self.every_seconds is not None and float(self.every_seconds) <= 0:
            raise ValueError(f"every_seconds must be > 0, got {self.every_seconds}")

    @property
    def periodic(self) -> bool:
        """True when either cadence trigger is armed."""
        return self.every_batches is not None or self.every_seconds is not None


class JobCheckpointer:
    """Writes job snapshots into the store on a :class:`CheckpointPolicy`.

    One instance serves every job of a daemon; cadence bookkeeping is per
    job name.  All failures are contained — :meth:`checkpoint` never
    raises, it logs, bumps the job's failure counter, and leaves the
    previous generation in place for the next attempt.
    """

    def __init__(self, store: "ResultStore", policy: CheckpointPolicy) -> None:
        self.store = store
        self.policy = policy
        self._last_batches: dict[str, int] = {}
        self._last_time: dict[str, float] = {}

    def maybe_checkpoint(self, job: "Job") -> bool:
        """Checkpoint *job* if its cadence is due; True when one was written."""
        if not self.policy.periodic:
            return False
        name = job.name
        batches = job.engine.batches_ingested
        now = time.monotonic()
        since_batches = batches - self._last_batches.setdefault(name, 0)
        since_seconds = now - self._last_time.setdefault(name, now)
        due = (
            self.policy.every_batches is not None and since_batches >= self.policy.every_batches
        ) or (
            self.policy.every_seconds is not None and since_seconds >= self.policy.every_seconds
        )
        if not due or since_batches == 0:
            return False
        return self.checkpoint(job)

    def checkpoint(self, job: "Job") -> bool:
        """Write one checkpoint generation for *job*, containing any failure.

        Returns True on success.  On failure the job keeps serving: the
        error is logged as a WARNING, ``job.checkpoint_failures`` grows,
        and the cadence clocks are *not* advanced, so the very next
        cadence point retries.
        """
        engine = job.engine
        try:
            self.store.put_checkpoint(
                job.config_hash,
                engine.snapshot(),
                seq=engine.acked_seq,
                meta={"kind": "service_checkpoint", "job": job.name},
            )
        except Exception as error:
            job.checkpoint_failures += 1
            _logger.warning(
                "checkpoint write failed for job %r at seq %d (%s); "
                "will retry at the next cadence point",
                job.name, engine.acked_seq, error,
            )
            return False
        job.checkpoints_written += 1
        self._last_batches[job.name] = engine.batches_ingested
        self._last_time[job.name] = time.monotonic()
        _logger.debug("checkpointed job %r at seq %d", job.name, engine.acked_seq)
        return True


def resume_job(store: "ResultStore", job: "Job") -> int | None:
    """Restore *job* from its newest valid checkpoint, if any.

    Returns the acked sequence number the job resumed from (recorded on
    ``job.resumed_from_seq`` and surfaced in ``/status``), or ``None``
    when the store holds no usable checkpoint — an empty store is a normal
    cold start, not an error.  A checkpoint that fails to *restore* (as
    opposed to failing verification, which falls back a generation inside
    :meth:`~repro.campaigns.store.ResultStore.latest_checkpoint`) is
    logged and the job starts fresh: a daemon must come up serving.
    """
    found = store.latest_checkpoint(job.config_hash)
    if found is None:
        _logger.info("no checkpoint for job %r (config %s...); starting fresh",
                     job.name, job.config_hash[:12])
        return None
    seq, snapshot = found
    try:
        job.engine.restore(snapshot)
    except Exception as error:
        _logger.warning(
            "checkpoint seq=%d for job %r did not restore (%s); starting fresh",
            seq, job.name, error,
        )
        job.reset_engine()
        return None
    job.resumed_from_seq = seq
    _logger.info(
        "job %r resumed from checkpoint seq=%d (%d windows folded, %d packets buffered)",
        job.name, seq, job.engine.windows_folded, job.engine.packets_buffered,
    )
    return seq
