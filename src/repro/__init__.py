"""repro — reproduction of "Hybrid Power-Law Models of Network Traffic".

The package is organised into five subpackages:

* :mod:`repro.core` — the paper's contribution: the modified Zipf–Mandelbrot
  model and its fit, the PALU generative model, its closed-form observed-
  network expectations, the reduced-parameter fitting recipe, and the
  PALU↔ZM connection of Equation (5).
* :mod:`repro.generators` — generative-network substrate: preferential
  attachment, configuration model, Erdős–Rényi edge sampling, Poisson star
  components, and the full PALU underlying-network builder.
* :mod:`repro.streaming` — traffic-observatory substrate: synthetic packet
  traces, fixed-valid-packet windowing, the sparse traffic image ``A_t``,
  the Table-I aggregates, and the end-to-end analysis pipeline.
* :mod:`repro.analysis` — degree histograms, binary-log pooling, topology
  decomposition, residual moments, phase-segmented drift analysis, and
  goodness-of-fit comparison.
* :mod:`repro.scenarios` — time-varying workloads: declarative multi-phase
  scenarios (drifting exponents, flash crowds, changing graph families)
  emitted as lazy chunk streams through the single-pass engine.
* :mod:`repro.campaigns` — sweep orchestration: parameter grids over
  scenarios × seeds × backends, expanded into content-hashed run specs,
  executed through the engine's backend pool, and persisted in an on-disk
  result store so finished cells are never recomputed.
* :mod:`repro.detect` — online drift detection: streaming change-point
  detectors (EWMA / CUSUM / Page–Hinkley) riding the single-pass engine in
  O(bins) memory, scored against scenario ground truth.

Quickstart::

    import repro

    params = repro.PALUParameters.from_weights(0.5, 0.2, 0.3, lam=2.0, alpha=2.0)
    graph = repro.generate_palu_graph(params, n_nodes=20_000, seed=7)
    observed = repro.sample_edges(graph.graph, p=0.4, seed=8)
    hist = repro.degree_histogram([d for _, d in observed.degree() if d > 0])
    fit = repro.fit_zipf_mandelbrot_histogram(hist)
    print(fit.as_row())
"""

from repro import analysis, campaigns, core, detect, generators, scenarios, streaming
from repro.campaigns import (
    Campaign,
    CampaignReport,
    CampaignRun,
    ResultStore,
    RunSpec,
    run_campaign,
)
from repro.analysis import (
    PhaseSegmentedAnalysis,
    DegreeHistogram,
    PooledDistribution,
    aggregate_pooled,
    compare_models,
    decompose_topology,
    degree_histogram,
    pool_differential_cumulative,
    summarize_graph,
)
from repro.core import (
    FIG4_PANELS,
    DiscretePowerLaw,
    PALUDegreeDistribution,
    PALUFitResult,
    PALUParameters,
    PowerLawFitResult,
    ZipfMandelbrotDistribution,
    ZipfMandelbrotModel,
    ZMFitResult,
    curve_family,
    degree_distribution,
    expected_class_fractions,
    expected_degree_fractions,
    expected_degree_one_fraction,
    fit_palu,
    fit_power_law,
    fit_zipf_mandelbrot,
    fit_zipf_mandelbrot_histogram,
    reduced_parameters,
    riemann_zeta,
    visible_fraction,
)
from repro.generators import (
    generate_erdos_renyi,
    generate_palu_graph,
    generate_poisson_stars,
    generate_preferential_attachment,
    sample_edges,
    webcrawl_sample,
)
from repro.detect import (
    DETECTOR_NAMES,
    DetectingAnalyzer,
    DetectionResult,
    DetectorEvaluation,
    DriftDetector,
    evaluate_detectors,
    evaluate_run,
    get_detector,
)
from repro.scenarios import (
    Phase,
    Scenario,
    ScenarioTraceSource,
    analyze_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.streaming import (
    PacketTrace,
    StreamAnalyzer,
    TrafficImage,
    WindowedAnalysis,
    analyze_trace,
    compute_aggregates,
    generate_trace,
    get_backend,
    iter_trace_chunks,
    iter_windows,
    save_trace_sharded,
    traffic_image,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "campaigns",
    "core",
    "detect",
    "generators",
    "scenarios",
    "streaming",
    # detect
    "DETECTOR_NAMES",
    "DetectingAnalyzer",
    "DetectionResult",
    "DetectorEvaluation",
    "DriftDetector",
    "evaluate_detectors",
    "evaluate_run",
    "get_detector",
    # campaigns
    "Campaign",
    "CampaignReport",
    "CampaignRun",
    "ResultStore",
    "RunSpec",
    "run_campaign",
    # analysis
    "PhaseSegmentedAnalysis",
    "DegreeHistogram",
    "PooledDistribution",
    "aggregate_pooled",
    "compare_models",
    "decompose_topology",
    "degree_histogram",
    "pool_differential_cumulative",
    "summarize_graph",
    # core
    "FIG4_PANELS",
    "DiscretePowerLaw",
    "PALUDegreeDistribution",
    "PALUFitResult",
    "PALUParameters",
    "PowerLawFitResult",
    "ZipfMandelbrotDistribution",
    "ZipfMandelbrotModel",
    "ZMFitResult",
    "curve_family",
    "degree_distribution",
    "expected_class_fractions",
    "expected_degree_fractions",
    "expected_degree_one_fraction",
    "fit_palu",
    "fit_power_law",
    "fit_zipf_mandelbrot",
    "fit_zipf_mandelbrot_histogram",
    "reduced_parameters",
    "riemann_zeta",
    "visible_fraction",
    # generators
    "generate_erdos_renyi",
    "generate_palu_graph",
    "generate_poisson_stars",
    "generate_preferential_attachment",
    "sample_edges",
    "webcrawl_sample",
    # scenarios
    "Phase",
    "Scenario",
    "ScenarioTraceSource",
    "analyze_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    # streaming
    "PacketTrace",
    "StreamAnalyzer",
    "TrafficImage",
    "WindowedAnalysis",
    "analyze_trace",
    "compute_aggregates",
    "generate_trace",
    "get_backend",
    "iter_trace_chunks",
    "iter_windows",
    "save_trace_sharded",
    "traffic_image",
    "__version__",
]
