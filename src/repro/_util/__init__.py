"""Internal utilities shared across :mod:`repro` subpackages.

This package is private: nothing here is part of the public API and the
contents may change between releases without notice.  The modules are kept
deliberately small so that the scientific subpackages (``core``,
``generators``, ``streaming``, ``analysis``) stay free of boilerplate.
"""

from repro._util.rng import as_generator, spawn_generators
from repro._util.validation import (
    check_fraction,
    check_in_range,
    check_integer_array,
    check_nonnegative,
    check_positive,
    check_positive_int,
    check_probability_vector,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "check_fraction",
    "check_in_range",
    "check_integer_array",
    "check_nonnegative",
    "check_positive",
    "check_positive_int",
    "check_probability_vector",
]
