"""Argument validation helpers.

Every public function in :mod:`repro` validates its scalar arguments eagerly
so that misuse produces an immediate, descriptive :class:`ValueError` or
:class:`TypeError` rather than a confusing numerical failure deep inside a
vectorised kernel.  The helpers here centralise those checks and keep the
error messages consistent.

All helpers return the validated (and possibly coerced) value so they can be
used inline::

    alpha = check_positive(alpha, "alpha")
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_positive_int",
    "check_fraction",
    "check_in_range",
    "check_probability_vector",
    "check_integer_array",
]


def _is_real_scalar(value: object) -> bool:
    """Return True when *value* is a real (non-complex, non-bool) scalar."""
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float, np.integer, np.floating)):
        return True
    return False


def check_positive(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that *value* is a finite positive real scalar.

    Parameters
    ----------
    value:
        The scalar to validate.
    name:
        Parameter name used in error messages.
    allow_zero:
        If True, zero is accepted.

    Returns
    -------
    float
        The value converted to a Python float.
    """
    if not _is_real_scalar(value):
        raise TypeError(f"{name} must be a real scalar, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Validate that *value* is a finite scalar >= 0 and return it as float."""
    return check_positive(value, name, allow_zero=True)


def check_positive_int(value: int, name: str, *, minimum: int = 1) -> int:
    """Validate that *value* is an integer >= *minimum* and return it as int."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Validate that *value* lies in [0, 1] (or (0, 1) when not inclusive)."""
    if not _is_real_scalar(value):
        raise TypeError(f"{name} must be a real scalar, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if inclusive:
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not (0.0 < value < 1.0):
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_in_range(
    value: float,
    name: str,
    low: float,
    high: float,
    *,
    inclusive: bool = True,
) -> float:
    """Validate that *value* lies in the closed (or open) interval [low, high]."""
    if not _is_real_scalar(value):
        raise TypeError(f"{name} must be a real scalar, got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if inclusive:
        if not (low <= value <= high):
            raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    else:
        if not (low < value < high):
            raise ValueError(f"{name} must be in ({low}, {high}), got {value!r}")
    return value


def check_probability_vector(values: Sequence[float], name: str, *, atol: float = 1e-8) -> np.ndarray:
    """Validate that *values* is a 1-D array of non-negative entries summing to 1.

    Returns the values as a float64 array.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if np.any(~np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    total = float(arr.sum())
    if not math.isclose(total, 1.0, rel_tol=0.0, abs_tol=atol):
        raise ValueError(f"{name} must sum to 1 (got {total!r})")
    return arr


def check_integer_array(values: Sequence[int], name: str, *, minimum: int | None = None) -> np.ndarray:
    """Validate that *values* is an array of integers (optionally >= *minimum*).

    Floating-point inputs are accepted when they are exactly integral.
    Returns an int64 array.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return arr.astype(np.int64)
    if np.issubdtype(arr.dtype, np.floating):
        if np.any(~np.isfinite(arr)):
            raise ValueError(f"{name} must contain only finite values")
        if not np.all(arr == np.floor(arr)):
            raise ValueError(f"{name} must contain integral values")
        arr = arr.astype(np.int64)
    elif np.issubdtype(arr.dtype, np.integer):
        arr = arr.astype(np.int64)
    else:
        raise TypeError(f"{name} must be an integer array, got dtype {arr.dtype}")
    if minimum is not None and np.any(arr < minimum):
        raise ValueError(f"{name} must be >= {minimum}")
    return arr
