"""Random-number-generator plumbing.

Every stochastic entry point in :mod:`repro` accepts an ``rng`` argument that
may be ``None`` (fresh entropy), an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalises all three
into a Generator so downstream code never touches the legacy ``RandomState``
API, and :func:`spawn_generators` produces statistically independent child
generators for worker processes (used by the parallel window pipeline).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["RNGLike", "as_generator", "spawn_generators"]

RNGLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: RNGLike = None) -> np.random.Generator:
    """Coerce *rng* into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (use fresh OS entropy), an integer seed, a
        :class:`numpy.random.SeedSequence`, or an existing Generator
        (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise TypeError(
        "rng must be None, an int seed, a numpy SeedSequence, or a numpy Generator; "
        f"got {type(rng).__name__}"
    )


def spawn_generators(rng: RNGLike, count: int) -> Sequence[np.random.Generator]:
    """Create *count* independent child generators derived from *rng*.

    The children are derived through NumPy's ``SeedSequence.spawn`` machinery
    so that streams do not overlap even when many workers draw heavily.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    gen = as_generator(rng)
    seeds = gen.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
    return [np.random.default_rng(s) for s in seeds]
