"""Lightweight logging helpers.

:mod:`repro` never configures the root logger; it only creates namespaced
children under ``"repro"`` so that applications embedding the library keep
full control over handlers and levels.  :func:`get_logger` is the single
entry point used by the rest of the package.
"""

from __future__ import annotations

import logging
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["get_logger", "log_duration"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("streaming.pipeline")`` returns the logger named
    ``"repro.streaming.pipeline"``.
    """
    if not name:
        return logging.getLogger(_ROOT_NAME)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


@contextmanager
def log_duration(logger: logging.Logger, message: str, *, level: int = logging.DEBUG) -> Iterator[None]:
    """Context manager that logs the wall-clock duration of the enclosed block."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        logger.log(level, "%s took %.3f s", message, elapsed)
