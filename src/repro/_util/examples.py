"""The ``REPRO_EXAMPLE_SCALE`` convention shared by the example scripts.

Every script under ``examples/`` sizes its workload through
:func:`scaled`, so the docs smoke test (``tests/test_examples.py``) can
execute all of them at tiny sizes by exporting ``REPRO_EXAMPLE_SCALE``
(a float in ``(0, 1]``; unset means full size).  Centralised here so the
convention cannot drift between scripts.
"""

from __future__ import annotations

import os

__all__ = ["example_scale", "scaled"]


def example_scale() -> float:
    """The current workload scale factor (``REPRO_EXAMPLE_SCALE``, default 1)."""
    return float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def scaled(n: int, minimum: int = 1) -> int:
    """*n* shrunk by the example scale factor, never below *minimum*."""
    return max(minimum, int(n * example_scale()))
