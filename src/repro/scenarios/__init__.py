"""Scenario subsystem: time-varying traffic workloads for the streaming engine.

The paper's windowed analysis assumes every trace is drawn from one
stationary traffic graph.  This subpackage generates workloads that break
that assumption on purpose — multi-phase scenarios where the underlying
graph family, its parameters, or the per-link rate law change as the stream
progresses, optionally cross-fading between regimes — and drives them
through the existing single-pass engine:

* :mod:`repro.scenarios.scenario` — :class:`Phase`, :class:`Scenario`, and
  the ``@register_scenario`` registry (all validation happens at
  registration time),
* :mod:`repro.scenarios.families` — named graph families a phase can use,
* :mod:`repro.scenarios.source` — :class:`ScenarioTraceSource`, the lazy
  chunk stream (deterministic and chunk-size invariant for a fixed seed),
* :mod:`repro.scenarios.builtin` — the built-in catalogue
  (``repro scenarios list``),
* :mod:`repro.scenarios.run` — :func:`analyze_scenario`, one bounded-memory
  pass producing a :class:`~repro.streaming.pipeline.WindowedAnalysis` plus
  a :class:`~repro.analysis.phases.PhaseSegmentedAnalysis` with the
  adjacent-phase drift statistic.

Quickstart::

    from repro.scenarios import analyze_scenario

    run = analyze_scenario("alpha-drift", n_valid=5_000, seed=0, backend="streaming")
    run.engine_stats["max_buffered_packets"]   # bounded by the chunk size
    run.phases.drift("source_fanout")          # how far each phase moved
"""

from repro.scenarios.builtin import BUILTIN_SCENARIO_NAMES
from repro.scenarios.families import GRAPH_FAMILY_NAMES, build_family_edges, family_defaults
from repro.scenarios.run import ScenarioRun, analyze_scenario
from repro.scenarios.scenario import (
    Phase,
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.scenarios.source import DEFAULT_BLOCK_PACKETS, ScenarioTraceSource

__all__ = [
    "BUILTIN_SCENARIO_NAMES",
    "GRAPH_FAMILY_NAMES",
    "DEFAULT_BLOCK_PACKETS",
    "Phase",
    "Scenario",
    "ScenarioRun",
    "ScenarioTraceSource",
    "analyze_scenario",
    "build_family_edges",
    "family_defaults",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "scenario_names",
]
