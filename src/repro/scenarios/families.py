"""Graph families a scenario phase can draw its underlying network from.

The paper analyses traces whose underlying "who talks to whom" network is
fixed for the whole measurement; a scenario phase instead *names* one of the
generative families below, so successive phases can swap the substrate out
from under the traffic stream (the non-stationarity the paper's pooled
statistics assume away — see :mod:`repro.scenarios`).

Every family is a pure function ``(params, generator) → (m, 2) edge array``;
edge arrays are the common currency of the trace generator
(:data:`repro.streaming.trace_generator.GraphLike`), so scenario plumbing
never touches ``networkx`` objects.  Parameters are validated *by name* at
scenario registration time (:func:`validate_family`) — an unknown family or
a misspelled parameter fails when the scenario is declared, not packets
deep into a run.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.core.palu_model import PALUParameters
from repro.generators.configuration_model import configuration_model_edges
from repro.generators.degree_sequence import sample_power_law_degrees
from repro.generators.erdos_renyi import erdos_renyi_edges
from repro.generators.palu_graph import generate_palu_graph
from repro.generators.poisson_stars import poisson_star_edges
from repro.generators.preferential_attachment import generate_shifted_preferential_attachment

__all__ = ["GRAPH_FAMILY_NAMES", "family_defaults", "validate_family", "build_family_edges"]


def _erdos_renyi(params: Mapping[str, float], gen: np.random.Generator) -> np.ndarray:
    return erdos_renyi_edges(int(params["n_nodes"]), float(params["p"]), rng=gen)


def _configuration(params: Mapping[str, float], gen: np.random.Generator) -> np.ndarray:
    degrees = sample_power_law_degrees(
        int(params["n_nodes"]), float(params["alpha"]), dmax=int(params["dmax"]), rng=gen
    )
    return configuration_model_edges(degrees, rng=gen)


def _preferential_attachment(params: Mapping[str, float], gen: np.random.Generator) -> np.ndarray:
    graph = generate_shifted_preferential_attachment(
        int(params["n_nodes"]), int(params["m_edges"]), alpha=float(params["alpha"]), rng=gen
    )
    return np.asarray(list(graph.edges()), dtype=np.int64)


def _palu(params: Mapping[str, float], gen: np.random.Generator) -> np.ndarray:
    palu_params = PALUParameters.from_weights(
        float(params["core"]),
        float(params["leaves"]),
        float(params["unattached"]),
        lam=float(params["lam"]),
        alpha=float(params["alpha"]),
        strict=False,
    )
    return generate_palu_graph(palu_params, int(params["n_nodes"]), rng=gen).edges_array()


def _poisson_stars(params: Mapping[str, float], gen: np.random.Generator) -> np.ndarray:
    return poisson_star_edges(int(params["n_stars"]), float(params["lam"]), rng=gen).edges


#: family name → (builder, default parameters).  The defaults double as the
#: set of *accepted* parameter names for registration-time validation.
_FAMILIES: dict[str, tuple[Callable[[Mapping[str, float], np.random.Generator], np.ndarray], dict[str, float]]] = {
    "erdos-renyi": (_erdos_renyi, {"n_nodes": 2_000, "p": 0.002}),
    "configuration": (_configuration, {"n_nodes": 2_000, "alpha": 2.0, "dmax": 10_000}),
    "preferential-attachment": (_preferential_attachment, {"n_nodes": 2_000, "m_edges": 1, "alpha": 2.5}),
    "palu": (
        _palu,
        {"n_nodes": 4_000, "core": 0.55, "leaves": 0.25, "unattached": 0.20, "lam": 2.0, "alpha": 2.0},
    ),
    "poisson-stars": (_poisson_stars, {"n_stars": 1_500, "lam": 2.0}),
}

#: Names accepted by :class:`repro.scenarios.Phase.graph`.
GRAPH_FAMILY_NAMES = tuple(_FAMILIES)


def family_defaults(family: str) -> dict[str, float]:
    """Default parameters of one graph family (a copy, safe to mutate)."""
    validate_family(family, {})
    return dict(_FAMILIES[family][1])


def validate_family(family: str, params: Mapping[str, float]) -> None:
    """Check a family name and its parameter names; raise ``ValueError`` otherwise."""
    if family not in _FAMILIES:
        raise ValueError(f"unknown graph family {family!r}; expected one of {GRAPH_FAMILY_NAMES}")
    unknown = set(params) - set(_FAMILIES[family][1])
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for graph family {family!r}; "
            f"accepted: {sorted(_FAMILIES[family][1])}"
        )


def build_family_edges(
    family: str, params: Mapping[str, float], gen: np.random.Generator
) -> np.ndarray:
    """Build one realisation of *family* and return its ``(m, 2)`` edge array.

    *params* overrides the family defaults; unknown names raise exactly as at
    registration time (:func:`validate_family`).
    """
    validate_family(family, params)
    builder, defaults = _FAMILIES[family]
    merged = {**defaults, **dict(params)}
    edges = builder(merged, gen)
    if edges.shape[0] == 0:
        raise ValueError(
            f"graph family {family!r} with parameters {merged} produced no edges; "
            "traffic cannot be generated over an empty graph"
        )
    return edges
