"""Built-in scenarios: the workload regimes the ROADMAP's scenario axis opens.

Each factory below registers one named scenario.  They are deliberately
laptop-sized (tens of thousands of packets, thousand-node graphs) so the
whole catalogue can be analysed in seconds — scale the budgets up by
constructing variants with :class:`~repro.scenarios.Scenario` directly.

The catalogue spans the ways a real observatory stream violates the paper's
one-stationary-graph assumption:

* ``stationary``       — the paper's regime, as the control.
* ``alpha-drift``      — the core's power-law exponent drifts across phases
  (slow topology evolution, the hivclustering-style regime).
* ``flash-crowd``      — a sudden star-burst (flash crowd / DDoS-shaped
  concentration) interrupts a stationary baseline, then recedes.
* ``generator-mix``    — the graph *family* itself changes phase to phase.
* ``heavy-tail-burst`` — topology fixed, but the per-link rate law's tail
  thickens sharply mid-stream.
* ``invalid-storm``    — a burst of invalid packets stresses the
  fixed-``N_V`` windowing (windows stretch over more raw packets).
"""

from __future__ import annotations

from repro.scenarios.scenario import Phase, Scenario, register_scenario

__all__ = ["BUILTIN_SCENARIO_NAMES"]

_PALU = {"n_nodes": 3_000, "core": 0.55, "leaves": 0.25, "unattached": 0.20, "lam": 2.0}


@register_scenario
def stationary() -> Scenario:
    """Single-phase control: one graph, one rate law, start to finish."""
    return Scenario(
        name="stationary",
        description="one PALU graph and one zipf rate law for the whole trace (the paper's regime)",
        phases=(Phase("palu", 60_000, {**_PALU, "alpha": 2.0}, rate_exponent=1.2),),
    )


@register_scenario
def alpha_drift() -> Scenario:
    """The core exponent drifts 1.7 → 2.0 → 2.6 with smooth cross-fades."""
    return Scenario(
        name="alpha-drift",
        description="PALU core power-law exponent drifts across three cross-faded phases",
        phases=(
            Phase("palu", 30_000, {**_PALU, "alpha": 1.7}, rate_exponent=1.2),
            Phase("palu", 30_000, {**_PALU, "alpha": 2.0}, rate_exponent=1.2),
            Phase("palu", 30_000, {**_PALU, "alpha": 2.6}, rate_exponent=1.2),
        ),
        crossfade_packets=4_000,
    )


@register_scenario
def flash_crowd() -> Scenario:
    """A star-burst phase with sharply concentrated rates interrupts a baseline."""
    baseline = Phase("palu", 30_000, {**_PALU, "alpha": 2.0}, rate_exponent=1.1)
    return Scenario(
        name="flash-crowd",
        description="stationary baseline, then a poisson-star flash crowd with concentrated rates, then recovery",
        phases=(
            baseline,
            Phase("poisson-stars", 20_000, {"n_stars": 400, "lam": 6.0}, rate_exponent=2.0),
            baseline,
        ),
        crossfade_packets=3_000,
    )


@register_scenario
def generator_mix() -> Scenario:
    """The graph family itself changes every phase."""
    return Scenario(
        name="generator-mix",
        description="ER → configuration-model → preferential-attachment → poisson-stars, one family per phase",
        phases=(
            Phase("erdos-renyi", 20_000, {"n_nodes": 2_000, "p": 0.003}),
            Phase("configuration", 20_000, {"n_nodes": 2_000, "alpha": 2.2}),
            Phase("preferential-attachment", 20_000, {"n_nodes": 2_000, "alpha": 2.5}),
            Phase("poisson-stars", 20_000, {"n_stars": 1_200, "lam": 2.5}),
        ),
    )


@register_scenario
def heavy_tail_burst() -> Scenario:
    """Fixed topology; the rate law's tail thickens sharply mid-stream."""
    graph = {"n_nodes": 2_500, "alpha": 2.1}
    return Scenario(
        name="heavy-tail-burst",
        description="configuration-model topology with a lognormal rate tail that bursts from σ=0.8 to σ=2.5",
        phases=(
            Phase("configuration", 25_000, graph, rate_model="lognormal", lognormal_sigma=0.8),
            Phase("configuration", 25_000, graph, rate_model="lognormal", lognormal_sigma=2.5),
            Phase("configuration", 25_000, graph, rate_model="lognormal", lognormal_sigma=0.8),
        ),
        crossfade_packets=2_000,
    )


@register_scenario
def invalid_storm() -> Scenario:
    """A burst of invalid packets stretches the fixed-N_V windows."""
    return Scenario(
        name="invalid-storm",
        description="clean baseline, a 30% invalid-packet storm, then a light residue — stresses N_V windowing",
        phases=(
            Phase("palu", 25_000, {**_PALU, "alpha": 2.0}, rate_exponent=1.2),
            Phase("palu", 25_000, {**_PALU, "alpha": 2.0}, rate_exponent=1.2, invalid_fraction=0.30),
            Phase("palu", 25_000, {**_PALU, "alpha": 2.0}, rate_exponent=1.2, invalid_fraction=0.05),
        ),
    )


#: Names of the scenarios registered by this module, in registration order.
BUILTIN_SCENARIO_NAMES = (
    "stationary",
    "alpha-drift",
    "flash-crowd",
    "generator-mix",
    "heavy-tail-burst",
    "invalid-storm",
)
