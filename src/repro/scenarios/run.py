"""Run a scenario through the single-pass streaming engine.

:func:`analyze_scenario` is the scenario counterpart of
:func:`repro.streaming.pipeline.analyze_trace`: the scenario's chunk stream
(:class:`~repro.scenarios.source.ScenarioTraceSource`) is windowed by the
same :class:`~repro.streaming.window.ChunkedWindower`, mapped through the
same pluggable :class:`~repro.streaming.parallel.ExecutionBackend`, and
folded by the same :class:`~repro.streaming.pipeline.StreamAnalyzer` — with
a :class:`~repro.analysis.phases.PhaseSegmentedAnalyzer` riding the same
in-order result stream to attribute windows to phases.  Because both folds
consume the identical ordered stream, scenario analyses keep the engine's
guarantee: every backend produces bit-identical pooled output, globally and
per phase, and peak buffering stays bounded by the chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro._util.logging import get_logger
from repro._util.validation import check_positive_int
from repro.analysis.phases import PhaseSegmentedAnalysis, PhaseSegmentedAnalyzer
from repro.detect.analyzer import DetectingAnalyzer, DetectionResult
from repro.scenarios.scenario import Scenario, get_scenario
from repro.scenarios.source import DEFAULT_BLOCK_PACKETS, ScenarioTraceSource, SeedLike
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.parallel import ExecutionBackend, get_backend
from repro.streaming.pipeline import StreamAnalyzer, WindowedAnalysis, fold_windows
from repro.streaming.sketch import SketchConfig
from repro.streaming.window import ChunkedWindower

__all__ = ["ScenarioRun", "analyze_scenario"]

_logger = get_logger("scenarios.run")


@dataclass(frozen=True)
class ScenarioRun:
    """Everything one scenario run produced.

    Attributes
    ----------
    scenario:
        The scenario that was run.
    analysis:
        The engine's :class:`WindowedAnalysis` over the whole stream
        (``engine_stats`` carries the buffering high-water mark).
    phases:
        The :class:`PhaseSegmentedAnalysis`: per-phase pooled distributions
        and the adjacent-phase drift statistic.
    detection:
        Online drift-detection alarms
        (:class:`~repro.detect.analyzer.DetectionResult`), present when the
        run was produced with ``detectors=``; ``None`` otherwise.
    """

    scenario: Scenario
    analysis: WindowedAnalysis
    phases: PhaseSegmentedAnalysis
    detection: DetectionResult | None = None

    @property
    def engine_stats(self):
        """Engine execution statistics of the underlying analysis."""
        return self.analysis.engine_stats


def analyze_scenario(
    scenario: Union[str, Scenario],
    n_valid: int,
    *,
    seed: SeedLike = 0,
    quantities: Sequence[str] = QUANTITY_NAMES,
    backend: Union[str, ExecutionBackend, None] = None,
    n_workers: int | None = None,
    chunk_packets: int | None = None,
    block_packets: int = DEFAULT_BLOCK_PACKETS,
    keep_windows: bool | None = None,
    batch_windows: int | None = None,
    detectors: Sequence[str] | None = None,
    detect_quantity: str | None = None,
    mode: str = "exact",
    sketch: SketchConfig | None = None,
    payload_transport: str | None = None,
) -> ScenarioRun:
    """Generate and analyse a scenario in one bounded-memory pass.

    Parameters
    ----------
    scenario:
        A registered scenario name or a :class:`Scenario` instance.
    n_valid:
        Window size ``N_V`` in valid packets.
    seed:
        Scenario seed; the same seed reproduces the identical trace (and
        therefore identical analysis) on every backend and chunking.
    quantities, backend, n_workers, chunk_packets, keep_windows, batch_windows:
        As in :func:`repro.streaming.pipeline.analyze_trace`.  Under
        ``backend="streaming"`` the default ``chunk_packets`` falls back to
        ``block_packets`` so buffering is always bounded.  Window batching
        (``batch_windows``) moves whole window batches per backend task —
        purely an execution knob, never part of the result's identity.
    block_packets:
        Internal generation block size (part of the trace's identity: the
        same scenario and seed with a different block size is a different —
        equally valid — trace realisation).
    detectors:
        Online drift detectors to ride the fold
        (:data:`repro.detect.DETECTOR_NAMES` names or
        :class:`~repro.detect.detectors.DriftDetector` instances).  The
        returned run then carries a ``detection`` result whose alarm
        sequences are bit-identical on every backend and invariant to
        chunking.  ``None`` or empty (the default) skips detection
        entirely.
    detect_quantity:
        Which pooled quantity the detectors monitor (default:
        ``"source_fanout"`` when analysed, else the first of *quantities*).
    mode, sketch:
        Per-window analysis tier, as in
        :func:`repro.streaming.pipeline.analyze_trace`: ``"exact"``
        (default) or ``"sketch"``.  Detection and phase segmentation run
        unchanged on sketched histograms — drift alarms at line rate in
        O(sketch) memory per window — and stay bit-identical across
        backends and chunkings for a fixed sketch seed.
    payload_transport:
        How the process backend ships window columns to its workers
        (``"shm"``/``"pickle"``), as in
        :func:`repro.streaming.pipeline.analyze_trace` — an execution
        knob, never part of the result's identity.

    Returns
    -------
    ScenarioRun
    """
    scenario = get_scenario(scenario)
    n_valid = check_positive_int(n_valid, "n_valid")
    backend_impl = get_backend(backend, n_workers=n_workers, payload_transport=payload_transport)
    if keep_windows is None:
        keep_windows = backend_impl.name != "streaming"
    if chunk_packets is None and backend_impl.name == "streaming":
        chunk_packets = block_packets

    source = ScenarioTraceSource(
        scenario, seed=seed, chunk_packets=chunk_packets, block_packets=block_packets
    )
    windower = ChunkedWindower(iter(source), n_valid)
    _logger.debug(
        "running scenario %r (%d phases, %d packets) via %s backend",
        scenario.name, scenario.n_phases, scenario.n_packets, backend_impl.name,
    )
    if detect_quantity is not None and not detectors:
        raise ValueError(
            "detect_quantity was given but no detectors; pass detectors= to enable detection"
        )
    analyzer = StreamAnalyzer(
        n_valid, quantities, keep_windows=keep_windows, mode=mode, sketch=sketch
    )
    folder: Union[StreamAnalyzer, DetectingAnalyzer] = analyzer
    if detectors:  # None or empty both mean "no detection"
        folder = DetectingAnalyzer(analyzer, detectors, quantity=detect_quantity)
    # the source is always ahead of the windows cut from it, so its running
    # per-phase valid tally is complete for every index the attributor sees
    segmenter = PhaseSegmentedAnalyzer(
        n_valid, scenario.n_phases, source.phase_of_valid_index, quantities
    )
    # the one shared fold loop (windows are pooled once, vectors handed to
    # every consumer): identical code to analyze_trace and the service daemon
    fold_windows(
        backend_impl, windower, folder, consumers=(segmenter,),
        batch_windows=batch_windows, mode=mode, sketch=analyzer.sketch_config,
    )
    stats = {
        "backend": backend_impl.name,
        **(
            {"payload_transport": backend_impl.payload_transport}
            if hasattr(backend_impl, "payload_transport") else {}
        ),
        "scenario": scenario.name,
        "n_phases": scenario.n_phases,
        "max_buffered_packets": windower.max_buffered_packets,
        "n_chunks": windower.n_chunks,
    }
    analysis = folder.result(stats=stats)
    detection = folder.detection() if isinstance(folder, DetectingAnalyzer) else None
    return ScenarioRun(
        scenario=scenario, analysis=analysis, phases=segmenter.result(), detection=detection
    )
