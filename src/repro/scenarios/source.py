"""Lazy chunked trace emission for scenarios.

:class:`ScenarioTraceSource` turns a :class:`~repro.scenarios.scenario.Scenario`
into an iterator of :class:`~repro.streaming.packet.PacketTrace` chunks — the
same chunk-stream shape :func:`repro.streaming.trace_io.iter_trace_chunks`
produces — so arbitrarily long scenarios flow straight through
:func:`repro.streaming.pipeline.analyze_trace`'s windowing and execution
backends without the trace ever being materialized.

Determinism contract
--------------------
Generation is organised in fixed *blocks* of ``block_packets`` packets whose
boundaries and RNG streams depend only on ``(scenario, seed, block_packets)``:
the root :class:`numpy.random.SeedSequence` spawns one child per phase, and
each phase spawns one generator for its graph, one for its rate weights, and
one per block.  A requested ``chunk_packets`` merely *re-cuts* the block
stream (:func:`repro.streaming.trace_io.rechunk`), so for a fixed seed the
concatenation of the chunks is bit-identical for every chunk size — and
identical to :meth:`Scenario.generate`'s eager trace.  That invariance is
what the property harness pins down (``tests/test_scenarios_properties.py``).

Memory is ``O(block_packets + chunk_packets)`` plus one phase's graph: only
the current block, the current phase's (edges, weights), and — while a
cross-fade is in progress — the previous phase's, are alive at once.

Downstream, :func:`repro.scenarios.run.analyze_scenario` windows this chunk
stream and moves the windows through its execution backend in *batches*
(``batch_windows``).  Batching — like ``chunk_packets`` — is pure execution
plumbing: blocks, and therefore the emitted packets, are untouched by it,
so every (backend, chunking, batching) combination replays the identical
trace and the per-phase valid tally stays ahead of any window a consumer
can observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

import numpy as np

from repro._util.validation import check_positive_int
from repro.scenarios.families import build_family_edges
from repro.scenarios.scenario import Scenario
from repro.streaming.packet import PACKET_DTYPE, PacketTrace
from repro.streaming.trace_generator import TraceConfig, edge_rate_weights
from repro.streaming.trace_io import rechunk

__all__ = ["DEFAULT_BLOCK_PACKETS", "ScenarioTraceSource"]

#: Internal generation block size.  Fixed (not derived from the caller's
#: chunk size) so that chunking never changes the generated packets.
DEFAULT_BLOCK_PACKETS = 65_536

SeedLike = Union[None, int, np.random.SeedSequence]


@dataclass(frozen=True)
class _PhaseState:
    """One phase's realised substrate: edge endpoints and rate weights."""

    index: int
    edges: np.ndarray
    weights: np.ndarray
    config: TraceConfig

    @property
    def n_nodes(self) -> int:
        return int(self.edges.max()) + 1


def _emit_block(
    n: int,
    state: _PhaseState,
    gen: np.random.Generator,
    time_offset: float,
    fade_from: _PhaseState | None,
    p_old: np.ndarray | None,
) -> np.ndarray:
    """Draw one block of *n* packet records.

    The draw order is fixed (edge choice, optional fade mix, direction flip,
    invalid injection, inter-arrivals, sizes) — part of the determinism
    contract, so reordering it is a format break for golden tests.
    """
    chosen = gen.choice(state.edges.shape[0], size=n, replace=True, p=state.weights)
    src = state.edges[chosen, 0].copy()
    dst = state.edges[chosen, 1].copy()
    if fade_from is not None and p_old is not None:
        # cross-fade: each packet falls back to the previous phase's substrate
        # with probability p_old (ramping down across the fade region)
        use_old = gen.random(n) < p_old
        n_old = int(use_old.sum())
        if n_old:
            chosen_old = gen.choice(
                fade_from.edges.shape[0], size=n_old, replace=True, p=fade_from.weights
            )
            src[use_old] = fade_from.edges[chosen_old, 0]
            dst[use_old] = fade_from.edges[chosen_old, 1]
    config = state.config
    if config.directed:
        flip = gen.random(n) < 0.5
        src[flip], dst[flip] = dst[flip], src[flip].copy()
    valid = np.ones(n, dtype=bool)
    if config.invalid_fraction > 0:
        invalid = gen.random(n) < config.invalid_fraction
        valid[invalid] = False
        n_nodes = state.n_nodes if fade_from is None else max(state.n_nodes, fade_from.n_nodes)
        src[invalid] = gen.integers(0, n_nodes, size=int(invalid.sum()))
        dst[invalid] = gen.integers(0, n_nodes, size=int(invalid.sum()))
    records = np.empty(n, dtype=PACKET_DTYPE)
    records["src"] = src
    records["dst"] = dst
    records["time"] = time_offset + np.cumsum(gen.exponential(config.mean_interarrival, size=n))
    records["size"] = gen.integers(64, 1500, size=n, dtype=np.int32)
    records["valid"] = valid
    return records


class ScenarioTraceSource:
    """Iterable of trace chunks realising one scenario under one seed.

    Iterating yields consecutive :class:`PacketTrace` chunks (of
    ``chunk_packets`` packets each when given, else native generation
    blocks).  The source also keeps the running per-phase *valid*-packet
    tally that phase attribution needs
    (:meth:`phase_of_valid_index`) — because chunks are always produced
    before any window covering them is emitted downstream, the tally is
    complete for every packet a consumer has seen.

    A source is single-use (like any chunk iterator); build a new one to
    replay the identical trace.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        seed: SeedLike = None,
        chunk_packets: int | None = None,
        block_packets: int = DEFAULT_BLOCK_PACKETS,
    ) -> None:
        if not isinstance(scenario, Scenario):
            raise TypeError(f"scenario must be a Scenario, got {type(scenario).__name__}")
        self.scenario = scenario
        self.block_packets = check_positive_int(block_packets, "block_packets")
        self.chunk_packets = (
            None if chunk_packets is None else check_positive_int(chunk_packets, "chunk_packets")
        )
        self._seed_sequence = (
            seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
        )
        self._valid_per_phase = np.zeros(scenario.n_phases, dtype=np.int64)
        self._started = False

    @property
    def n_packets(self) -> int:
        """Total packets this source will emit (the scenario's budget)."""
        return self.scenario.n_packets

    @property
    def valid_emitted_per_phase(self) -> np.ndarray:
        """Valid packets emitted so far, per phase (a copy)."""
        return self._valid_per_phase.copy()

    def phase_of_valid_index(self, index: int) -> int:
        """Phase owning the *index*-th valid packet emitted so far.

        Only meaningful for indices the source has already emitted past —
        which is every index a downstream window can refer to, since chunks
        are produced ahead of the windows cut from them.
        """
        if index < 0:
            raise ValueError(f"valid-packet index must be >= 0, got {index}")
        boundaries = np.cumsum(self._valid_per_phase)
        if index >= boundaries[-1]:
            raise ValueError(
                f"valid-packet index {index} not yet emitted ({boundaries[-1]} so far)"
            )
        return int(np.searchsorted(boundaries, index, side="right"))

    def __iter__(self) -> Iterator[PacketTrace]:
        if self._started:
            raise RuntimeError("ScenarioTraceSource is single-use; build a new one to replay")
        self._started = True
        blocks = self._iter_blocks()
        if self.chunk_packets is None:
            return blocks
        return rechunk(blocks, self.chunk_packets)

    def _phase_state(self, index: int, phase_ss: np.random.SeedSequence) -> tuple:
        """Realise phase *index*: graph edges, rate weights, and block seeds."""
        phase = self.scenario.phases[index]
        config = self.scenario.phase_configs[index]
        n_blocks = -(-phase.n_packets // self.block_packets)
        graph_ss, weights_ss, *block_seeds = phase_ss.spawn(2 + n_blocks)
        edges = build_family_edges(phase.graph, phase.graph_params, np.random.default_rng(graph_ss))
        weights = edge_rate_weights(edges.shape[0], config, np.random.default_rng(weights_ss))
        state = _PhaseState(index=index, edges=edges, weights=weights, config=config)
        return state, block_seeds

    def _iter_blocks(self) -> Iterator[PacketTrace]:
        scenario = self.scenario
        phase_sequences = self._seed_sequence.spawn(scenario.n_phases)
        fade = scenario.crossfade_packets
        time_offset = 0.0
        previous: _PhaseState | None = None
        for index in range(scenario.n_phases):
            state, block_seeds = self._phase_state(index, phase_sequences[index])
            budget = scenario.phases[index].n_packets
            emitted = 0
            for block_ss in block_seeds:
                n = min(self.block_packets, budget - emitted)
                fade_from = None
                p_old = None
                if previous is not None and fade and emitted < fade:
                    # linear ramp over the fade region at the head of this
                    # phase: packet j (0-based) keeps the old substrate with
                    # probability 1 - (j + 1) / (fade + 1)
                    j = emitted + np.arange(n, dtype=np.float64)
                    p_old = np.clip(1.0 - (j + 1.0) / (fade + 1.0), 0.0, None)
                    fade_from = previous
                records = _emit_block(
                    n, state, np.random.default_rng(block_ss), time_offset, fade_from, p_old
                )
                time_offset = float(records["time"][-1])
                emitted += n
                self._valid_per_phase[index] += int(np.count_nonzero(records["valid"]))
                yield PacketTrace(records)
            previous = state if fade else None
