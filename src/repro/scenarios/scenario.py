"""Declarative scenarios: phases, the :class:`Scenario` dataclass, the registry.

A *scenario* is a sequence of :class:`Phase`\\ s, each naming a graph family
(:mod:`repro.scenarios.families`), a packet budget, and a traffic-rate model.
Together they describe a non-stationary workload: the underlying network
and/or the per-link rate law changes as the stream progresses, with an
optional smooth cross-fade between consecutive phases.  The paper's pooled
windowed statistics assume a *stationary* traffic graph; scenarios are the
controlled way to break that assumption and measure what happens
(:class:`repro.analysis.phases.PhaseSegmentedAnalysis`).

Every phase's :class:`~repro.streaming.trace_generator.TraceConfig` is built
— and therefore validated — **once, at scenario construction time**, with
the phase index woven into any error.  A malformed phase fails when the
scenario is registered, not mid-stream after minutes of generation, and the
per-phase configs are reused verbatim by every
:class:`~repro.scenarios.source.ScenarioTraceSource` instead of being
re-validated per phase or per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.scenarios.families import validate_family
from repro.streaming.trace_generator import TraceConfig

__all__ = [
    "Phase",
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
]


@dataclass(frozen=True)
class Phase:
    """One stationary regime of a scenario.

    Attributes
    ----------
    graph:
        Graph-family name (one of
        :data:`repro.scenarios.families.GRAPH_FAMILY_NAMES`).
    n_packets:
        Packet budget of the phase (valid + invalid); phase budgets sum to
        the scenario's total trace length.
    graph_params:
        Family parameter overrides (validated by name at scenario
        construction).
    rate_model / rate_exponent / lognormal_sigma / invalid_fraction:
        Traffic knobs, with the :class:`TraceConfig` semantics.
    """

    graph: str
    n_packets: int
    graph_params: Mapping[str, float] = field(default_factory=dict)
    rate_model: str = "zipf"
    rate_exponent: float = 1.2
    lognormal_sigma: float = 1.5
    invalid_fraction: float = 0.0
    mean_interarrival: float = 1e-4

    def trace_config(self) -> TraceConfig:
        """The (validated) generator configuration of this phase."""
        return TraceConfig(
            n_packets=self.n_packets,
            rate_model=self.rate_model,
            rate_exponent=self.rate_exponent,
            lognormal_sigma=self.lognormal_sigma,
            invalid_fraction=self.invalid_fraction,
            mean_interarrival=self.mean_interarrival,
        )


@dataclass(frozen=True)
class Scenario:
    """A named sequence of phases with an optional inter-phase cross-fade.

    ``crossfade_packets`` smooths each phase boundary: during the first
    ``crossfade_packets`` packets of phase ``k+1``, each packet is drawn from
    phase ``k``'s (graph, rates) with a probability that ramps linearly down
    to zero, so the old regime bleeds into the new one instead of switching
    on a packet edge.  The fade happens *inside* the next phase's budget, so
    phase budgets always sum exactly to the scenario's total packet count.

    Construction validates everything a run would need: phase structure,
    graph families and their parameter names, and every phase's
    :class:`TraceConfig` — errors carry the offending phase index.
    """

    name: str
    phases: tuple[Phase, ...]
    crossfade_packets: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("scenario name must be a non-empty string")
        phases = tuple(self.phases)
        object.__setattr__(self, "phases", phases)
        if not phases:
            raise ValueError(f"scenario {self.name!r} must have at least one phase")
        configs = []
        for index, phase in enumerate(phases):
            if not isinstance(phase, Phase):
                raise TypeError(
                    f"scenario {self.name!r} phase {index}: expected a Phase, "
                    f"got {type(phase).__name__}"
                )
            try:
                validate_family(phase.graph, phase.graph_params)
                configs.append(phase.trace_config())
            except (TypeError, ValueError) as error:
                raise ValueError(f"scenario {self.name!r} phase {index}: {error}") from error
        if self.crossfade_packets < 0:
            raise ValueError(f"scenario {self.name!r}: crossfade_packets must be >= 0")
        if self.crossfade_packets:
            shortest = min(phase.n_packets for phase in phases)
            if self.crossfade_packets > shortest:
                raise ValueError(
                    f"scenario {self.name!r}: crossfade_packets={self.crossfade_packets} exceeds "
                    f"the shortest phase budget ({shortest}); the fade must fit inside a phase"
                )
        # validated configs, built once — the source reuses these verbatim
        object.__setattr__(self, "_phase_configs", tuple(configs))

    @property
    def phase_configs(self) -> tuple[TraceConfig, ...]:
        """Per-phase trace configurations (validated at construction)."""
        return self._phase_configs  # type: ignore[attr-defined]

    @property
    def n_phases(self) -> int:
        """Number of phases in the scenario."""
        return len(self.phases)

    @property
    def n_packets(self) -> int:
        """Total packet budget across all phases."""
        return sum(phase.n_packets for phase in self.phases)

    def phase_packet_boundaries(self) -> np.ndarray:
        """Packet-index boundaries: phase ``k`` spans ``[b[k], b[k+1])``."""
        budgets = np.array([phase.n_packets for phase in self.phases], dtype=np.int64)
        return np.concatenate([[0], np.cumsum(budgets)])

    def generate(self, *, seed=None, block_packets: int | None = None):
        """Materialize the whole scenario trace eagerly (tests / small runs).

        Identical, packet for packet, to concatenating the chunks of a
        :class:`~repro.scenarios.source.ScenarioTraceSource` built with the
        same seed — chunked emission is a pure re-cut of the generation.
        """
        from repro.scenarios.source import ScenarioTraceSource
        from repro.streaming.packet import concatenate_traces

        kwargs = {} if block_packets is None else {"block_packets": block_packets}
        return concatenate_traces(list(ScenarioTraceSource(self, seed=seed, **kwargs)))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Scenario] = {}


def register_scenario(scenario, *, replace: bool = False) -> Scenario:
    """Register a scenario under its name and return it.

    Usable directly (``register_scenario(Scenario(...))``) or as a decorator
    on a zero-argument factory::

        @register_scenario
        def alpha_drift() -> Scenario:
            return Scenario("alpha-drift", phases=(...))

    The factory runs immediately (so its scenario is validated at import
    time) and the *scenario* is what ends up bound to the decorated name.
    """
    built = scenario() if callable(scenario) else scenario
    if not isinstance(built, Scenario):
        raise TypeError(f"expected a Scenario (or a factory returning one), got {type(built).__name__}")
    if built.name in _REGISTRY and not replace:
        raise ValueError(f"scenario {built.name!r} is already registered (pass replace=True to override)")
    _REGISTRY[built.name] = built
    return built


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name."""
    if isinstance(name, Scenario):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Names of all registered scenarios, sorted."""
    return tuple(sorted(_REGISTRY))


def iter_scenarios() -> Iterator[Scenario]:
    """Iterate over registered scenarios in name order."""
    for name in scenario_names():
        yield _REGISTRY[name]
