"""Streaming-traffic substrate: traces, windows, the sparse image ``A_t``.

The paper's measurements come from Internet observatories that aggregate
``N_V`` consecutive valid packets into a sparse source×destination matrix
``A_t`` and compute the Table-I / Figure-1 quantities from it.  This
subpackage provides a laptop-scale replacement for that pipeline:

* :mod:`repro.streaming.packet` — packet record arrays and the
  :class:`PacketTrace` container,
* :mod:`repro.streaming.trace_generator` — synthetic traffic streams replayed
  from an underlying (PALU) network,
* :mod:`repro.streaming.window` — fixed-``N_V`` windowing,
* :mod:`repro.streaming.sparse_image` — the sparse matrix ``A_t``
  (compatibility view; the hot path no longer builds it),
* :mod:`repro.streaming.aggregates` — Table-I aggregates and Figure-1
  per-node/per-link quantities computed from the matrix,
* :mod:`repro.streaming.kernel` — the fused sort-based window kernel that
  computes all of the above in one pass over packed ``(src, dst)`` keys,
* :mod:`repro.streaming.pipeline` — the single-pass analysis engine:
  trace → windows → histograms → running pooled distributions, executed on a
  pluggable backend (:mod:`repro.streaming.parallel` — serial, process pool,
  or bounded-memory streaming with prefetch),
* :mod:`repro.streaming.shm` — the shared-memory zero-copy payload transport
  the process backend defaults to where the platform supports it.
"""

from repro.streaming.aggregates import (
    AggregateProperties,
    compute_aggregates,
    compute_aggregates_summation,
    network_quantities,
)
from repro.streaming.packet import PACKET_DTYPE, PacketTrace, concatenate_traces
from repro.streaming.kernel import KERNEL_MAX_ID, fused_products, image_products, window_payload
from repro.streaming.parallel import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    StreamingBackend,
    default_worker_count,
    get_backend,
    map_windows,
    shutdown_shared_pools,
    usable_cpu_count,
)
from repro.streaming.pipeline import (
    MODE_NAMES,
    StreamAnalyzer,
    WindowedAnalysis,
    analyze_trace,
    analyze_window,
    analyze_window_image,
    analyze_window_sketch,
    analyze_windows,
    default_batch_windows,
)
from repro.streaming.shm import (
    TRANSPORT_NAMES,
    default_payload_transport,
    publish_payloads,
    reap_orphaned_segments,
    shm_supported,
)
from repro.streaming.sketch import (
    DEFAULT_SKETCH_CONFIG,
    SketchBounds,
    SketchConfig,
    WindowSketch,
    build_sketch,
    sketch_products,
)
from repro.streaming.sparse_image import TrafficImage, traffic_image
from repro.streaming.trace_generator import TraceConfig, generate_trace, generate_trace_from_graph
from repro.streaming.trace_io import (
    ANALYSIS_COLUMNS,
    LAYOUT_NAMES,
    iter_trace_chunks,
    load_trace,
    rechunk,
    save_trace,
    save_trace_sharded,
    trace_format,
)
from repro.streaming.weighted import (
    WEIGHTED_QUANTITY_NAMES,
    byte_histograms,
    byte_image,
    weighted_quantities,
)
from repro.streaming.window import ChunkedWindower, count_windows, iter_windows, iter_windows_chunked

__all__ = [
    "AggregateProperties",
    "compute_aggregates",
    "compute_aggregates_summation",
    "network_quantities",
    "PACKET_DTYPE",
    "PacketTrace",
    "concatenate_traces",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "StreamingBackend",
    "get_backend",
    "map_windows",
    "MODE_NAMES",
    "StreamAnalyzer",
    "WindowedAnalysis",
    "analyze_trace",
    "analyze_window",
    "analyze_window_image",
    "analyze_window_sketch",
    "analyze_windows",
    "default_batch_windows",
    "DEFAULT_SKETCH_CONFIG",
    "SketchBounds",
    "SketchConfig",
    "WindowSketch",
    "build_sketch",
    "sketch_products",
    "default_worker_count",
    "usable_cpu_count",
    "shutdown_shared_pools",
    "TRANSPORT_NAMES",
    "default_payload_transport",
    "publish_payloads",
    "reap_orphaned_segments",
    "shm_supported",
    "KERNEL_MAX_ID",
    "fused_products",
    "image_products",
    "window_payload",
    "TrafficImage",
    "traffic_image",
    "TraceConfig",
    "generate_trace",
    "generate_trace_from_graph",
    "ANALYSIS_COLUMNS",
    "LAYOUT_NAMES",
    "iter_trace_chunks",
    "load_trace",
    "rechunk",
    "save_trace",
    "save_trace_sharded",
    "trace_format",
    "WEIGHTED_QUANTITY_NAMES",
    "byte_histograms",
    "byte_image",
    "weighted_quantities",
    "ChunkedWindower",
    "count_windows",
    "iter_windows",
    "iter_windows_chunked",
]
