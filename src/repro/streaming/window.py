"""Fixed-valid-packet windowing of traces.

"An essential step for increasing the accuracy of the statistical measures
of Internet traffic is using windows with the same number of valid packets
``N_V``" (Section II).  :func:`iter_windows` cuts a trace into consecutive
windows each containing exactly ``N_V`` valid packets (invalid packets ride
along inside whichever window they fall into but do not count toward the
budget); a trailing partial window is dropped so every emitted window is
statistically comparable.

:class:`ChunkedWindower` is the out-of-core counterpart: it consumes an
iterator of trace *chunks* (e.g. :func:`repro.streaming.trace_io.iter_trace_chunks`)
and yields exactly the same windows as :func:`iter_windows` would on the
concatenated trace, while only ever buffering one chunk plus the leftover
packets of the current incomplete window.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple, TypeVar

import numpy as np

from repro._util.validation import check_positive_int
from repro.streaming.packet import PACKET_DTYPE, PacketTrace

__all__ = [
    "iter_windows",
    "iter_windows_chunked",
    "iter_batches",
    "ChunkedWindower",
    "PushWindower",
    "count_windows",
    "window_boundaries",
]

_T = TypeVar("_T")


def iter_batches(items: Iterable[_T], batch_size: int) -> Iterator[Tuple[_T, ...]]:
    """Group an iterable into consecutive tuples of *batch_size* (last short).

    Order-preserving and lazy — one batch is materialized at a time, so
    batching a window stream keeps its bounded-memory property.  The
    execution backends use this to move whole window batches through one
    queue slot / worker task instead of paying per-window overhead.
    """
    batch_size = check_positive_int(batch_size, "batch_size")
    batch: list = []
    for item in items:
        batch.append(item)
        if len(batch) == batch_size:
            yield tuple(batch)
            batch = []
    if batch:
        yield tuple(batch)


def window_boundaries(trace: PacketTrace, n_valid: int) -> np.ndarray:
    """Packet-index boundaries of consecutive ``N_V``-valid-packet windows.

    Returns an array ``b`` of length ``n_windows + 1``; window ``k`` spans
    packet indices ``[b[k], b[k+1])``.  Only complete windows are included.
    """
    n_valid = check_positive_int(n_valid, "n_valid")
    if len(trace) == 0:
        return np.zeros(1, dtype=np.int64)
    cumulative_valid = np.cumsum(trace.packets["valid"].astype(np.int64))
    total_valid = int(cumulative_valid[-1])
    n_windows = total_valid // n_valid
    if n_windows == 0:
        return np.zeros(1, dtype=np.int64)
    # boundary k is one past the packet index where the k*n_valid-th valid packet sits
    targets = np.arange(1, n_windows + 1, dtype=np.int64) * n_valid
    ends = np.searchsorted(cumulative_valid, targets, side="left") + 1
    return np.concatenate([[0], ends]).astype(np.int64)


def count_windows(trace: PacketTrace, n_valid: int) -> int:
    """Number of complete ``N_V``-valid-packet windows in the trace."""
    n_valid = check_positive_int(n_valid, "n_valid")
    return trace.n_valid // n_valid


def iter_windows(trace: PacketTrace, n_valid: int) -> Iterator[PacketTrace]:
    """Yield consecutive windows each containing exactly *n_valid* valid packets.

    Windows are shared-memory slices of the parent trace; the final partial
    window (fewer than *n_valid* valid packets) is not emitted.
    """
    boundaries = window_boundaries(trace, n_valid)
    for k in range(boundaries.size - 1):
        yield trace.slice(int(boundaries[k]), int(boundaries[k + 1]))


class PushWindower:
    """Incremental push-driven windower: feed chunks, receive cut windows.

    The *push* counterpart of :class:`ChunkedWindower` — and its actual
    implementation: both cut with :func:`window_boundaries` over a buffer
    that always starts at a window boundary, so for **any** re-batching of
    the same packet stream the emitted windows are packet-identical to
    ``iter_windows(full_trace, n_valid)``.  That invariance is what lets a
    resident daemon fed arbitrary network batches reproduce a one-shot
    analysis bit for bit (``tests/test_service_properties.py``).

    Attributes
    ----------
    buffered_packets / buffered_valid:
        Packets (total / valid) currently held for the next incomplete
        window — at most one window's worth plus the tail of the last chunk.
    max_buffered_packets:
        High-water mark of the internal packet buffer.
    n_chunks:
        Number of chunks pushed so far.
    """

    def __init__(self, n_valid: int) -> None:
        self.n_valid = check_positive_int(n_valid, "n_valid")
        self.max_buffered_packets = 0
        self.n_chunks = 0
        # accumulate chunk arrays and only concatenate once a window's worth
        # of valid packets is buffered — work per window stays O(window span)
        # even when chunks are tiny relative to the window
        self._parts: list[np.ndarray] = []
        self._n_buffered = 0
        self._valid_buffered = 0

    @property
    def buffered_packets(self) -> int:
        """Packets currently buffered toward the next incomplete window."""
        return self._n_buffered

    @property
    def buffered_valid(self) -> int:
        """Valid packets currently buffered toward the next incomplete window."""
        return self._valid_buffered

    def push(self, chunk: PacketTrace) -> list[PacketTrace]:
        """Feed one chunk; return the complete windows it just closed.

        Returns ``[]`` while the buffer is still short of ``n_valid`` valid
        packets.  A trailing partial window is never emitted — it stays
        buffered until later pushes complete it (matching the drop-partial
        semantics of :func:`iter_windows` at end of stream).
        """
        if not isinstance(chunk, PacketTrace):
            raise TypeError(f"chunks must be PacketTrace instances, got {type(chunk).__name__}")
        self.n_chunks += 1
        if chunk.n_packets == 0:
            return []
        self._parts.append(chunk.packets)
        self._n_buffered += chunk.n_packets
        self._valid_buffered += chunk.n_valid
        self.max_buffered_packets = max(self.max_buffered_packets, self._n_buffered)
        if self._valid_buffered < self.n_valid:
            return []
        buffered = PacketTrace(
            self._parts[0] if len(self._parts) == 1 else np.concatenate(self._parts)
        )
        boundaries = window_boundaries(buffered, self.n_valid)
        windows = [
            buffered.slice(int(boundaries[k]), int(boundaries[k + 1]))
            for k in range(boundaries.size - 1)
        ]
        leftover = buffered.packets[int(boundaries[-1]):]
        self._parts = [leftover] if leftover.size else []
        self._n_buffered = int(leftover.size)
        self._valid_buffered -= (boundaries.size - 1) * self.n_valid
        return windows

    def snapshot(self) -> dict:
        """Exact buffered state for service checkpoints.

        The pending parts are concatenated into one structured packet array;
        concatenation order is push order, so a restored windower cuts the
        same windows at the same boundaries as the original would have.
        """
        if self._parts:
            packets = self._parts[0] if len(self._parts) == 1 else np.concatenate(self._parts)
            packets = packets.copy()
        else:
            packets = np.empty(0, dtype=PACKET_DTYPE)
        return {
            "n_valid": int(self.n_valid),
            "packets": packets,
            "n_chunks": int(self.n_chunks),
            "max_buffered_packets": int(self.max_buffered_packets),
        }

    def restore(self, state: dict) -> None:
        """Replace the buffered state with a :meth:`snapshot` payload."""
        if int(state["n_valid"]) != self.n_valid:
            raise ValueError(
                f"windower snapshot was taken with n_valid={state['n_valid']}, "
                f"cannot restore into n_valid={self.n_valid}"
            )
        trace = PacketTrace(np.asarray(state["packets"]))  # validates dtype
        packets = trace.packets.copy()
        self._parts = [packets] if packets.size else []
        self._n_buffered = int(packets.size)
        self._valid_buffered = trace.n_valid
        self.n_chunks = int(state["n_chunks"])
        self.max_buffered_packets = int(state["max_buffered_packets"])


class ChunkedWindower:
    """Single-pass windower over an iterator of trace chunks.

    The buffer always starts at a window boundary (emitted windows are cut
    off the front), so window boundaries computed chunk-locally coincide with
    the global boundaries of the concatenated trace: for any chunking of a
    trace, ``ChunkedWindower(chunks, n_valid)`` yields packet-identical
    windows to ``iter_windows(full_trace, n_valid)``.  The cutting itself
    lives in :class:`PushWindower` (this class is the pull-style adapter
    over it), so batch analyses and the resident service daemon share one
    windowing code path.

    Attributes
    ----------
    max_buffered_packets:
        High-water mark of the internal packet buffer — bounded by the
        largest chunk plus one window's worth of leftover packets, which is
        what makes the streaming engine's memory O(chunk), not O(trace).
    n_chunks:
        Number of chunks consumed so far.
    """

    def __init__(self, chunks: Iterable[PacketTrace], n_valid: int) -> None:
        self.n_valid = check_positive_int(n_valid, "n_valid")
        self._chunks = iter(chunks)
        self._pusher = PushWindower(self.n_valid)

    @property
    def max_buffered_packets(self) -> int:
        """High-water mark of the internal packet buffer."""
        return self._pusher.max_buffered_packets

    @property
    def n_chunks(self) -> int:
        """Number of chunks consumed so far."""
        return self._pusher.n_chunks

    def __iter__(self) -> Iterator[PacketTrace]:
        for chunk in self._chunks:
            yield from self._pusher.push(chunk)
        # the trailing partial window (if any) is dropped, matching iter_windows


def iter_windows_chunked(chunks: Iterable[PacketTrace], n_valid: int) -> ChunkedWindower:
    """Window an iterator of trace chunks without materializing the trace.

    Thin constructor around :class:`ChunkedWindower`; iterate the returned
    object to get the windows, then read its buffering statistics.
    """
    return ChunkedWindower(chunks, n_valid)
