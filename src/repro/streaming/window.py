"""Fixed-valid-packet windowing of traces.

"An essential step for increasing the accuracy of the statistical measures
of Internet traffic is using windows with the same number of valid packets
``N_V``" (Section II).  :func:`iter_windows` cuts a trace into consecutive
windows each containing exactly ``N_V`` valid packets (invalid packets ride
along inside whichever window they fall into but do not count toward the
budget); a trailing partial window is dropped so every emitted window is
statistically comparable.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro._util.validation import check_positive_int
from repro.streaming.packet import PacketTrace

__all__ = ["iter_windows", "count_windows", "window_boundaries"]


def window_boundaries(trace: PacketTrace, n_valid: int) -> np.ndarray:
    """Packet-index boundaries of consecutive ``N_V``-valid-packet windows.

    Returns an array ``b`` of length ``n_windows + 1``; window ``k`` spans
    packet indices ``[b[k], b[k+1])``.  Only complete windows are included.
    """
    n_valid = check_positive_int(n_valid, "n_valid")
    if len(trace) == 0:
        return np.zeros(1, dtype=np.int64)
    cumulative_valid = np.cumsum(trace.packets["valid"].astype(np.int64))
    total_valid = int(cumulative_valid[-1])
    n_windows = total_valid // n_valid
    if n_windows == 0:
        return np.zeros(1, dtype=np.int64)
    # boundary k is one past the packet index where the k*n_valid-th valid packet sits
    targets = np.arange(1, n_windows + 1, dtype=np.int64) * n_valid
    ends = np.searchsorted(cumulative_valid, targets, side="left") + 1
    return np.concatenate([[0], ends]).astype(np.int64)


def count_windows(trace: PacketTrace, n_valid: int) -> int:
    """Number of complete ``N_V``-valid-packet windows in the trace."""
    n_valid = check_positive_int(n_valid, "n_valid")
    return trace.n_valid // n_valid


def iter_windows(trace: PacketTrace, n_valid: int) -> Iterator[PacketTrace]:
    """Yield consecutive windows each containing exactly *n_valid* valid packets.

    Windows are shared-memory slices of the parent trace; the final partial
    window (fewer than *n_valid* valid packets) is not emitted.
    """
    boundaries = window_boundaries(trace, n_valid)
    for k in range(boundaries.size - 1):
        yield trace.slice(int(boundaries[k]), int(boundaries[k + 1]))
