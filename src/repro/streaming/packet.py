"""Packet records and the :class:`PacketTrace` container.

A trace is a time-ordered sequence of packet records, stored as a structured
NumPy array so that million-packet streams are processed with vectorised
column operations rather than Python loops (see the hpc-parallel guides).
Each record carries:

* ``src`` / ``dst`` — anonymised integer endpoint identifiers,
* ``time`` — float64 timestamp (seconds, monotone non-decreasing),
* ``size`` — payload size in bytes (kept for the weighted-model extension
  the paper lists as future work), and
* ``valid`` — whether the packet counts toward the ``N_V`` window budget
  (the observatories discard malformed/irrelevant packets; the synthetic
  generator can inject such invalid packets to exercise that path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["PACKET_DTYPE", "PacketTrace", "concatenate_traces"]

#: Structured dtype of one packet record.
PACKET_DTYPE = np.dtype(
    [
        ("src", np.int64),
        ("dst", np.int64),
        ("time", np.float64),
        ("size", np.int32),
        ("valid", np.bool_),
    ]
)


@dataclass(frozen=True)
class PacketTrace:
    """A time-ordered packet stream backed by a structured array.

    The class is a thin, immutable view: slicing and filtering return new
    traces sharing memory with the original where NumPy allows it.
    """

    packets: np.ndarray

    def __post_init__(self) -> None:
        arr = np.asarray(self.packets)
        if arr.dtype != PACKET_DTYPE:
            raise TypeError(
                f"packets must have dtype PACKET_DTYPE, got {arr.dtype}; "
                "use PacketTrace.from_arrays to build from columns"
            )
        object.__setattr__(self, "packets", arr)

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def from_arrays(
        src: Sequence[int],
        dst: Sequence[int],
        *,
        time: Sequence[float] | None = None,
        size: Sequence[int] | None = None,
        valid: Sequence[bool] | None = None,
    ) -> "PacketTrace":
        """Build a trace from per-column arrays.

        ``time`` defaults to the packet index, ``size`` to 512 bytes, and
        ``valid`` to all-True.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise ValueError("src and dst must be 1-D arrays of equal length")
        n = src.size
        records = np.empty(n, dtype=PACKET_DTYPE)
        records["src"] = src
        records["dst"] = dst
        records["time"] = np.arange(n, dtype=np.float64) if time is None else np.asarray(time, dtype=np.float64)
        records["size"] = 512 if size is None else np.asarray(size, dtype=np.int32)
        records["valid"] = True if valid is None else np.asarray(valid, dtype=np.bool_)
        return PacketTrace(records)

    @staticmethod
    def empty() -> "PacketTrace":
        """An empty trace."""
        return PacketTrace(np.empty(0, dtype=PACKET_DTYPE))

    # -- basic properties -------------------------------------------------------

    def __len__(self) -> int:
        return int(self.packets.size)

    @property
    def n_packets(self) -> int:
        """Total number of packets (valid and invalid)."""
        return len(self)

    @property
    def n_valid(self) -> int:
        """Number of valid packets (the quantity windows are measured in)."""
        return int(np.count_nonzero(self.packets["valid"]))

    @property
    def sources(self) -> np.ndarray:
        """Source column (view)."""
        return self.packets["src"]

    @property
    def destinations(self) -> np.ndarray:
        """Destination column (view)."""
        return self.packets["dst"]

    @property
    def duration(self) -> float:
        """Elapsed time between the first and last packet."""
        if len(self) == 0:
            return 0.0
        t = self.packets["time"]
        return float(t[-1] - t[0])

    def unique_endpoints(self) -> np.ndarray:
        """Sorted array of all endpoint identifiers appearing in the trace."""
        if len(self) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate([self.packets["src"], self.packets["dst"]]))

    # -- transformations --------------------------------------------------------

    def valid_only(self) -> "PacketTrace":
        """Sub-trace containing only the valid packets."""
        return PacketTrace(self.packets[self.packets["valid"]])

    def slice(self, start: int, stop: int) -> "PacketTrace":
        """Packets with index in ``[start, stop)`` (a shared-memory view)."""
        return PacketTrace(self.packets[start:stop])

    def total_bytes(self) -> int:
        """Sum of packet sizes over the valid packets."""
        return int(self.packets["size"][self.packets["valid"]].sum())

    def iter_chunks(self, chunk_size: int) -> Iterator["PacketTrace"]:
        """Iterate over consecutive fixed-size chunks (the last may be short)."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        for start in range(0, len(self), chunk_size):
            yield self.slice(start, start + chunk_size)


def concatenate_traces(traces: Sequence[PacketTrace]) -> PacketTrace:
    """Concatenate traces in order (timestamps are taken as-is)."""
    traces = list(traces)
    if not traces:
        return PacketTrace.empty()
    return PacketTrace(np.concatenate([t.packets for t in traces]))
