"""Aggregate network properties (Table I) and streaming quantities (Figure 1).

Table I of the paper defines four aggregates of the traffic image ``A_t``
and gives each in two equivalent notations:

===================  ==============================  ==========================
Aggregate            Summation notation              Matrix notation
===================  ==============================  ==========================
Valid packets        ``Σ_i Σ_j A_t(i,j)``            ``1ᵀ A_t 1``
Unique links         ``Σ_i Σ_j |A_t(i,j)|₀``         ``1ᵀ |A_t|₀ 1``
Unique sources       ``Σ_i |Σ_j A_t(i,j)|₀``         ``1ᵀ |A_t 1|₀``
Unique destinations  ``Σ_j |Σ_i A_t(i,j)|₀``         ``|1ᵀ A_t|₀ 1``
===================  ==============================  ==========================

(`|·|₀` is the zero-norm that maps every non-zero to 1.)  Both forms are
implemented — the matrix form with sparse linear algebra, the summation form
with explicit reductions — and the test-suite checks they agree, which is
exactly the consistency the paper's table is asserting.

The engine's hot path no longer routes through this module: the fused
kernel (:mod:`repro.streaming.kernel`) produces the same aggregates and
histograms in one sorted pass without building ``A_t``.  The matrix
implementations here remain the authoritative, paper-shaped definitions and
serve as the kernel's cross-check oracle.

Figure 1's per-entity quantities are computed by :func:`network_quantities`:

* ``source_packets`` — packets sent by each distinct source (row sums),
* ``source_fanout`` — number of distinct destinations per source (row nnz),
* ``link_packets`` — packets per distinct source–destination pair,
* ``destination_fanin`` — number of distinct sources per destination,
* ``destination_packets`` — packets received by each distinct destination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.analysis.histogram import DegreeHistogram, degree_histogram
from repro.streaming.sparse_image import TrafficImage

__all__ = [
    "AggregateProperties",
    "compute_aggregates",
    "compute_aggregates_summation",
    "network_quantities",
    "quantity_histograms",
    "QUANTITY_NAMES",
]

#: Names of the five Figure-1 streaming quantities, in the paper's order.
QUANTITY_NAMES = (
    "source_packets",
    "source_fanout",
    "link_packets",
    "destination_fanin",
    "destination_packets",
)


@dataclass(frozen=True)
class AggregateProperties:
    """The four Table-I aggregates of one traffic window."""

    valid_packets: int
    unique_links: int
    unique_sources: int
    unique_destinations: int

    def as_row(self) -> dict:
        """Dictionary form used by the Table-I harness."""
        return {
            "valid_packets": self.valid_packets,
            "unique_links": self.unique_links,
            "unique_sources": self.unique_sources,
            "unique_destinations": self.unique_destinations,
        }


def compute_aggregates(image: TrafficImage) -> AggregateProperties:
    """Table-I aggregates in matrix notation (sparse linear algebra).

    ``1ᵀ A 1`` is the total packet count, ``1ᵀ |A|₀ 1`` the number of stored
    non-zeros, ``1ᵀ |A 1|₀`` the number of rows with non-zero row sum, and
    ``|1ᵀ A|₀ 1`` the number of columns with non-zero column sum.
    """
    matrix = image.matrix
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        return AggregateProperties(0, 0, 0, 0)
    ones_rows = np.ones(matrix.shape[0], dtype=np.int64)
    ones_cols = np.ones(matrix.shape[1], dtype=np.int64)
    row_sums = matrix @ ones_cols            # A_t 1
    col_sums = ones_rows @ matrix            # 1^T A_t
    valid_packets = int(row_sums.sum())      # 1^T A_t 1
    unique_links = int(matrix.nnz)           # 1^T |A_t|_0 1
    unique_sources = int(np.count_nonzero(row_sums))
    unique_destinations = int(np.count_nonzero(col_sums))
    return AggregateProperties(
        valid_packets=valid_packets,
        unique_links=unique_links,
        unique_sources=unique_sources,
        unique_destinations=unique_destinations,
    )


def compute_aggregates_summation(image: TrafficImage) -> AggregateProperties:
    """Table-I aggregates in summation notation (explicit element loops, vectorised).

    Kept deliberately independent of :func:`compute_aggregates` so the two
    notations cross-validate each other, as in the paper's table.
    """
    coo = image.matrix.tocoo()
    if coo.nnz == 0:
        return AggregateProperties(0, 0, 0, 0)
    values = coo.data
    valid_packets = int(values.sum())
    unique_links = int(np.count_nonzero(values))
    # Σ_j A_t(i, j) per source i, then zero-norm
    row_totals = np.zeros(image.n_sources, dtype=np.int64)
    np.add.at(row_totals, coo.row, values)
    unique_sources = int(np.count_nonzero(row_totals))
    col_totals = np.zeros(image.n_destinations, dtype=np.int64)
    np.add.at(col_totals, coo.col, values)
    unique_destinations = int(np.count_nonzero(col_totals))
    return AggregateProperties(
        valid_packets=valid_packets,
        unique_links=unique_links,
        unique_sources=unique_sources,
        unique_destinations=unique_destinations,
    )


def network_quantities(image: TrafficImage) -> Mapping[str, np.ndarray]:
    """The five Figure-1 per-entity quantities of one window.

    Returns a mapping from quantity name to the vector of per-entity values
    (one entry per distinct source, link, or destination as appropriate).
    Every value is a positive integer, ready for
    :func:`repro.analysis.histogram.degree_histogram`.
    """
    matrix = image.matrix
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        empty = np.zeros(0, dtype=np.int64)
        return {name: empty for name in QUANTITY_NAMES}
    csr = matrix.tocsr()
    csc = matrix.tocsc()
    source_packets = np.asarray(csr.sum(axis=1)).ravel().astype(np.int64)
    destination_packets = np.asarray(csc.sum(axis=0)).ravel().astype(np.int64)
    source_fanout = np.diff(csr.indptr).astype(np.int64)
    destination_fanin = np.diff(csc.indptr).astype(np.int64)
    link_packets = csr.data.astype(np.int64)
    return {
        "source_packets": source_packets,
        "source_fanout": source_fanout,
        "link_packets": link_packets,
        "destination_fanin": destination_fanin,
        "destination_packets": destination_packets,
    }


def quantity_histograms(image: TrafficImage) -> Mapping[str, DegreeHistogram]:
    """Degree histograms of the five Figure-1 quantities of one window."""
    quantities = network_quantities(image)
    histograms = {}
    for name, values in quantities.items():
        positive = values[values > 0]
        histograms[name] = degree_histogram(positive)
    return histograms
