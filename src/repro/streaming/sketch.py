"""Sub-linear sketch tier: Count-Min + HyperLogLog window analysis.

The exact fused kernel (:mod:`repro.streaming.kernel`) pays an
``argsort`` over every ``(src, dst)`` pair per window, so its cost grows
with the *diversity* of the window — at production scale (millions of
packets, hundreds of thousands of distinct links) it stops fitting the
single-core time and memory budget.  This module trades exactness for a
data-independent cost: every Table-I aggregate and Figure-1 histogram is
estimated from a fixed-size mergeable summary built in one pass over the
packet columns.

Structures (all sized by :class:`SketchConfig`, independent of ``N_V``):

* three Count-Min sketches (Cormode & Muthukrishnan, *J. Algorithms*
  2005) — one per key kind (source, destination, link) — give
  never-undercounting per-key packet counts with the classic guarantee
  ``P[estimate > true + eps_eff * n] <= delta_eff`` per query, where
  ``eps_eff = e / width`` and ``delta_eff = e ** -depth``;
* three HyperLogLog registers (Flajolet et al., AofA 2007) estimate the
  distinct-count aggregates (active sources, destinations, unique links)
  with relative standard error ``1.04 / sqrt(2 ** hll_p)``;
* two *spread bitmaps* (rows hashed by entity, columns by neighbour —
  the same row/column folding used by Locher-style spread sketches)
  estimate the fan-out / fan-in histograms via per-row linear counting.

Histograms are recovered without per-entity state by histogramming the
*buckets* themselves: the first Count-Min row partitions entities into
``width`` buckets whose values are sums of colliding entities, so the
bucket-value histogram approximates the entity-count histogram while
conserving total mass exactly (``sum(d * n(d)) == n_packets``).  The
spread bitmaps do the analogue for fan-out/fan-in.

Every structure is a commutative monoid (Count-Min: elementwise add,
HyperLogLog: elementwise max, bitmaps: bitwise or), so
:meth:`WindowSketch.merge` is associative and the streaming fold is
bit-identical for any chunking of the window stream under a fixed
:attr:`SketchConfig.seed`.  The exact kernel stays available as the
oracle; ``tests/test_sketch_oracle.py`` pins the error guarantees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.histogram import DegreeHistogram
from repro.streaming.aggregates import AggregateProperties

__all__ = [
    "DEFAULT_SKETCH_CONFIG",
    "SketchBounds",
    "SketchConfig",
    "WindowSketch",
    "build_sketch",
    "sketch_products",
]

_U64 = (1 << 64) - 1
#: splitmix64 constants (Steele, Lea & Flood, OOPSLA 2014) — the stream
#: seeds below 2**32 used by the trace generator are far too regular to
#: index hash tables directly, so every id goes through this finalizer.
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
#: odd multiplier deriving the Kirsch-Mitzenmacher second hash ``h2``.
_ALT = 0xC2B2AE3D27D4EB4F
#: multiplier combining the two mixed endpoints into the link key.
_LINKMUL = 0x9DDFEA08EB382D69

#: key kinds, in array index order, for the stacked sketch tables.
_KINDS = ("source", "destination", "link")
_SRC, _DST, _LINK = 0, 1, 2
#: spread bitmap index order: fan-out (rows=sources), fan-in (rows=dests).
_OUT, _IN = 0, 1

#: packets are consumed in fixed-size blocks so the build's temporary
#: memory is O(block + tables) however large the window is.
_BLOCK = 1 << 16

#: low 52 bits of a mixed key feed the HyperLogLog rank via an exact
#: float64 conversion (every integer below 2**53 is representable).
_MASK52 = np.uint64((1 << 52) - 1)

#: HyperLogLog ranks saturate at 31 (classic 5-bit LogLog registers):
#: ``P[rank > 31] = 2**-31`` per element, invisible below ~10**9 distinct
#: keys, and the cap halves the rank-presence planes the build scatters
#: into — the difference between fitting in L2 and thrashing it.
_RANK_CAP = 31
_RANK_BITS = 32

#: per-byte popcount table for the packed spread bitmaps.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def _scalar_mix(value: int) -> int:
    """splitmix64 finalizer on a Python integer (salt derivation)."""
    z = value & _U64
    z = ((z ^ (z >> 30)) * _MIX1) & _U64
    z = ((z ^ (z >> 27)) * _MIX2) & _U64
    return z ^ (z >> 31)


def _splitmix_inplace(h: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """Apply the splitmix64 finalizer to uint64 array *h* in place."""
    np.right_shift(h, np.uint64(30), out=tmp)
    h ^= tmp
    h *= np.uint64(_MIX1)
    np.right_shift(h, np.uint64(27), out=tmp)
    h ^= tmp
    h *= np.uint64(_MIX2)
    np.right_shift(h, np.uint64(31), out=tmp)
    h ^= tmp
    return h


def _link_mix_inplace(out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """Strengthen the additive link combination ``S + D * LINKMUL`` in place."""
    np.right_shift(out, np.uint64(32), out=tmp)
    out ^= tmp
    out *= np.uint64(_MIX1)
    np.right_shift(out, np.uint64(29), out=tmp)
    out ^= tmp
    return out


def _as_u64(ids) -> np.ndarray:
    """Reinterpret an integer id array as contiguous uint64 (zero-copy for int64)."""
    arr = np.ascontiguousarray(ids, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError("id columns must be one-dimensional")
    return arr.view(np.uint64)


@dataclass(frozen=True)
class SketchConfig:
    """Accuracy/size knobs of the sketch tier.

    Attributes
    ----------
    epsilon:
        Requested Count-Min additive error as a fraction of window packets;
        the table width is the next power of two ``>= e / epsilon`` so the
        effective guarantee (:attr:`effective_epsilon`) is at least as tight.
    delta:
        Requested per-query failure probability; depth is
        ``ceil(ln(1 / delta))`` rows.
    hll_p:
        HyperLogLog precision — ``2 ** hll_p`` registers, relative standard
        error ``1.04 / sqrt(2 ** hll_p)`` on the distinct-count aggregates.
    spread_rows / spread_cols:
        Power-of-two shape of the fan-out / fan-in bitmaps (rows hash the
        entity, columns hash the neighbour; per-row linear counting).
    seed:
        Salts every hash; sketches only merge when built under one seed.
    """

    epsilon: float = 1e-3
    delta: float = 0.05
    hll_p: int = 12
    spread_rows: int = 2048
    spread_cols: int = 256
    seed: int = 20210329

    def __post_init__(self) -> None:
        if not (0.0 < self.epsilon < 1.0):
            raise ValueError("epsilon must be in (0, 1)")
        if not (0.0 < self.delta < 1.0):
            raise ValueError("delta must be in (0, 1)")
        if not (4 <= int(self.hll_p) <= 18):
            raise ValueError("hll_p must be in [4, 18]")
        for name in ("spread_rows", "spread_cols"):
            value = int(getattr(self, name))
            if value < 8 or value & (value - 1):
                raise ValueError(f"{name} must be a power of two >= 8")
        if int(self.spread_cols) > (1 << 20):
            raise ValueError("spread_cols is unreasonably large")

    @property
    def width(self) -> int:
        """Count-Min table width: next power of two ``>= e / epsilon``."""
        need = math.ceil(math.e / self.epsilon)
        return 1 << max(3, (need - 1).bit_length())

    @property
    def depth(self) -> int:
        """Count-Min table depth: ``ceil(ln(1 / delta))`` rows (>= 1)."""
        return max(1, math.ceil(math.log(1.0 / self.delta)))

    @property
    def hll_m(self) -> int:
        """Number of HyperLogLog registers, ``2 ** hll_p``."""
        return 1 << int(self.hll_p)

    @property
    def effective_epsilon(self) -> float:
        """Additive-error fraction actually guaranteed: ``e / width``."""
        return math.e / self.width

    @property
    def effective_delta(self) -> float:
        """Per-query failure probability actually guaranteed: ``e ** -depth``."""
        return math.exp(-self.depth)

    @property
    def hll_relative_error(self) -> float:
        """HyperLogLog relative standard error, ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.hll_m)

    def salts(self) -> Tuple[int, ...]:
        """Per-kind uint64 hash salts derived from :attr:`seed`."""
        return tuple(
            _scalar_mix(self.seed + (index + 1) * _GAMMA) for index in range(len(_KINDS))
        )

    def as_key_payload(self) -> Dict[str, object]:
        """JSON-stable mapping of every accuracy knob, for content hashing."""
        return {
            "epsilon": float(self.epsilon),
            "delta": float(self.delta),
            "hll_p": int(self.hll_p),
            "spread_rows": int(self.spread_rows),
            "spread_cols": int(self.spread_cols),
            "seed": int(self.seed),
        }


#: module-wide default configuration (eps 1e-3 -> width 4096, delta 0.05
#: -> depth 3, 4096 HLL registers, 2048x256 spread bitmaps).
DEFAULT_SKETCH_CONFIG = SketchConfig()


@dataclass(frozen=True)
class SketchBounds:
    """Error bound of one estimated quantity.

    Attributes
    ----------
    estimator:
        Which structure produced the estimate (``"count-min"``,
        ``"hyperloglog"``, ``"spread-bitmap"`` or ``"exact"``).
    epsilon / delta:
        The Count-Min ``(eps, delta)`` guarantee — estimate never
        undercounts and overcounts by more than ``epsilon * n_packets``
        with probability at least ``1 - delta`` per query; ``None`` for
        estimators without an additive guarantee.
    relative_error:
        Expected relative error of the estimate: the standard error for
        HyperLogLog, and the expected entity-merging deficit (fraction of
        entities lost to bucket collisions) for the bucket histograms.
    """

    estimator: str
    epsilon: Optional[float]
    delta: Optional[float]
    relative_error: float


def _collision_deficit(distinct: float, buckets: int) -> float:
    """Expected fraction of entities merged away by bucket collisions.

    Hashing ``distinct`` entities into ``buckets`` occupies
    ``buckets * (1 - exp(-load))`` cells at ``load = distinct / buckets``,
    so the bucket histogram undercounts entities by ``1 - (1 - exp(-load))
    / load`` — the quantity reported as ``relative_error`` for the
    Count-Min and spread-bitmap histograms.
    """
    if distinct <= 0.0 or buckets <= 0:
        return 0.0
    load = distinct / buckets
    return float(1.0 + math.expm1(-load) / load) if load > 1e-12 else 0.0


def _hll_estimate(registers: np.ndarray) -> int:
    """Standard HyperLogLog cardinality estimate with small-range correction."""
    m = registers.size
    alpha = 0.7213 / (1.0 + 1.079 / m)
    raw = alpha * m * m / float(np.sum(np.ldexp(1.0, -registers.astype(np.int64))))
    zeros = int(np.count_nonzero(registers == 0))
    if zeros and raw <= 2.5 * m:
        return int(round(m * math.log(m / zeros)))
    return int(round(raw))


def _linear_count_lut(cols: int) -> np.ndarray:
    """Occupancy -> distinct-count linear-counting table for one bitmap row.

    Entry ``c`` is ``round(-cols * ln(1 - c / cols))``; a saturated row
    (``c == cols``) is clamped to the estimate at half a free cell.
    """
    lut = np.zeros(cols + 1, dtype=np.int64)
    c = np.arange(1, cols + 1, dtype=np.float64)
    frac = np.minimum(c / cols, (cols - 0.5) / cols)
    lut[1:] = np.maximum(1, np.rint(-cols * np.log1p(-frac))).astype(np.int64)
    return lut


def _bucket_histogram(row: np.ndarray) -> DegreeHistogram:
    """Histogram the non-zero buckets of one Count-Min row."""
    occupied = row[row > 0]
    degrees, counts = np.unique(occupied, return_counts=True)
    return DegreeHistogram._from_unique_trusted(degrees, counts)


def _spread_histogram(packed: np.ndarray, cols: int) -> DegreeHistogram:
    """Per-row linear-counting histogram of one packed spread bitmap."""
    row_counts = _POPCOUNT8[packed].sum(axis=1)
    occupied = row_counts[row_counts > 0]
    estimates = _linear_count_lut(cols)[occupied]
    degrees, counts = np.unique(estimates, return_counts=True)
    return DegreeHistogram._from_unique_trusted(degrees, counts)


class WindowSketch:
    """Fixed-size mergeable summary of one (or several merged) windows.

    Carries three stacked Count-Min tables (``cms``, shape
    ``(3, depth, width)`` int64, kind order source/destination/link),
    three HyperLogLog register banks (``hll``, shape ``(3, m)`` uint8)
    and two packed spread bitmaps (``spread``, shape
    ``(2, rows, cols // 8)`` uint8), plus the exact valid-packet count.
    All payloads are plain numpy arrays, so the object pickles cheaply
    across process backends and round-trips through result stores.
    """

    __slots__ = ("config", "n_packets", "cms", "hll", "spread")

    def __init__(
        self,
        config: SketchConfig,
        n_packets: int,
        cms: np.ndarray,
        hll: np.ndarray,
        spread: np.ndarray,
    ) -> None:
        self.config = config
        self.n_packets = int(n_packets)
        self.cms = cms
        self.hll = hll
        self.spread = spread

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls, config: SketchConfig = DEFAULT_SKETCH_CONFIG) -> "WindowSketch":
        """An all-zero sketch (the merge identity) under *config*."""
        return cls(
            config=config,
            n_packets=0,
            cms=np.zeros((len(_KINDS), config.depth, config.width), dtype=np.int64),
            hll=np.zeros((len(_KINDS), config.hll_m), dtype=np.uint8),
            spread=np.zeros(
                (2, config.spread_rows, config.spread_cols // 8), dtype=np.uint8
            ),
        )

    def copy(self) -> "WindowSketch":
        """Deep copy (the streaming fold mutates its accumulator in place)."""
        return WindowSketch(
            config=self.config,
            n_packets=self.n_packets,
            cms=self.cms.copy(),
            hll=self.hll.copy(),
            spread=self.spread.copy(),
        )

    # -- monoid ------------------------------------------------------------

    def merge_into(self, other: "WindowSketch") -> "WindowSketch":
        """Fold *other* into ``self`` in place (commutative, associative)."""
        if other.config != self.config:
            raise ValueError("cannot merge sketches built under different configs")
        self.n_packets += other.n_packets
        self.cms += other.cms
        np.maximum(self.hll, other.hll, out=self.hll)
        np.bitwise_or(self.spread, other.spread, out=self.spread)
        return self

    def merge(self, other: "WindowSketch") -> "WindowSketch":
        """A new sketch summarising the union of both packet multisets."""
        return self.copy().merge_into(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowSketch):
            return NotImplemented
        return (
            self.config == other.config
            and self.n_packets == other.n_packets
            and np.array_equal(self.cms, other.cms)
            and np.array_equal(self.hll, other.hll)
            and np.array_equal(self.spread, other.spread)
        )

    __hash__ = None  # mutable accumulator

    def __getstate__(self):
        """Pickle as a plain tuple of payloads (``__slots__`` has no dict)."""
        return (self.config, self.n_packets, self.cms, self.hll, self.spread)

    def __setstate__(self, state) -> None:
        """Restore from :meth:`__getstate__` output."""
        self.config, self.n_packets, self.cms, self.hll, self.spread = state

    @property
    def nbytes(self) -> int:
        """Total payload size in bytes (the per-window memory footprint)."""
        return int(self.cms.nbytes + self.hll.nbytes + self.spread.nbytes)

    # -- estimates ---------------------------------------------------------

    def distinct(self, kind: str) -> int:
        """HyperLogLog distinct-count estimate for one key kind."""
        return _hll_estimate(self.hll[_KINDS.index(kind)])

    def aggregates(self) -> AggregateProperties:
        """Estimated Table-I aggregates (valid-packet count is exact)."""
        return AggregateProperties(
            valid_packets=self.n_packets,
            unique_links=self.distinct("link"),
            unique_sources=self.distinct("source"),
            unique_destinations=self.distinct("destination"),
        )

    def histograms(self) -> Dict[str, DegreeHistogram]:
        """Estimated Figure-1 histograms for every supported quantity."""
        cols = self.config.spread_cols
        return {
            "source_packets": _bucket_histogram(self.cms[_SRC, 0]),
            "source_fanout": _spread_histogram(self.spread[_OUT], cols),
            "link_packets": _bucket_histogram(self.cms[_LINK, 0]),
            "destination_fanin": _spread_histogram(self.spread[_IN], cols),
            "destination_packets": _bucket_histogram(self.cms[_DST, 0]),
        }

    def bounds(self) -> Dict[str, SketchBounds]:
        """Per-quantity error bounds for every estimate this sketch serves."""
        cfg = self.config
        eps, delta = cfg.effective_epsilon, cfg.effective_delta
        hll_rel = cfg.hll_relative_error
        distinct = {kind: self.distinct(kind) for kind in _KINDS}

        def cms_bound(kind: str) -> SketchBounds:
            return SketchBounds(
                estimator="count-min",
                epsilon=eps,
                delta=delta,
                relative_error=_collision_deficit(distinct[kind], cfg.width),
            )

        def spread_bound(kind: str) -> SketchBounds:
            deficit = _collision_deficit(distinct[kind], cfg.spread_rows)
            return SketchBounds(
                estimator="spread-bitmap",
                epsilon=None,
                delta=None,
                relative_error=deficit + 1.0 / math.sqrt(cfg.spread_cols),
            )

        hll_bound = SketchBounds(
            estimator="hyperloglog", epsilon=None, delta=None, relative_error=hll_rel
        )
        return {
            "source_packets": cms_bound("source"),
            "source_fanout": spread_bound("source"),
            "link_packets": cms_bound("link"),
            "destination_fanin": spread_bound("destination"),
            "destination_packets": cms_bound("destination"),
            "unique_links": hll_bound,
            "unique_sources": hll_bound,
            "unique_destinations": hll_bound,
            "valid_packets": SketchBounds(
                estimator="exact", epsilon=None, delta=None, relative_error=0.0
            ),
        }

    # -- oracle support ----------------------------------------------------

    def _keys(self, kind: str, src, dst=None) -> np.ndarray:
        """Mixed uint64 keys for *kind*, hashed exactly as during the build."""
        salts = self.config.salts()
        if kind == "link":
            if dst is None:
                raise ValueError("link queries need both src and dst ids")
            s = _as_u64(src) + np.uint64(salts[_SRC])
            d = _as_u64(dst) + np.uint64(salts[_DST])
            _splitmix_inplace(s, np.empty_like(s))
            _splitmix_inplace(d, np.empty_like(d))
            keys = s + d * np.uint64(_LINKMUL)
            return _link_mix_inplace(keys, np.empty_like(keys))
        index = _KINDS.index(kind)
        ids = src if kind == "source" else (src if dst is None else dst)
        keys = _as_u64(ids) + np.uint64(salts[index])
        return _splitmix_inplace(keys, np.empty_like(keys))

    def query(self, kind: str, src, dst=None) -> np.ndarray:
        """Count-Min point estimates for the given ids (never undercounts).

        *kind* is ``"source"``, ``"destination"`` or ``"link"``; for links
        pass both endpoint arrays.  Returns int64 estimated packet counts,
        each ``>= true count`` and ``<= true + effective_epsilon *
        n_packets`` with probability ``>= 1 - effective_delta``.
        """
        if kind not in _KINDS:
            raise ValueError(f"unknown key kind {kind!r}; expected one of {_KINDS}")
        keys = self._keys(kind, src, dst)
        table = self.cms[_KINDS.index(kind)]
        mask = np.uint64(self.config.width - 1)
        h2 = ((keys >> np.uint64(32)) * np.uint64(_ALT)) | np.uint64(1)
        estimate: Optional[np.ndarray] = None
        for row in range(self.config.depth):
            idx = (keys + np.uint64(row) * h2) & mask
            values = table[row][idx]
            estimate = values if estimate is None else np.minimum(estimate, values)
        assert estimate is not None
        return estimate


def _accumulate(sketch: WindowSketch, srcu: np.ndarray, dstu: np.ndarray) -> None:
    """One-pass block-wise sketch build over mixed-and-salted id columns."""
    cfg = sketch.config
    depth, width = cfg.depth, cfg.width
    mask = np.uint64(width - 1)
    m = cfg.hll_m
    rows, cols = cfg.spread_rows, cfg.spread_cols
    row_mask, col_mask = np.uint64(rows - 1), np.uint64(cols - 1)
    salts = [np.uint64(s) for s in cfg.salts()]

    # bit-presence scratch: HLL ranks land in (m, _RANK_BITS) planes,
    # spread bits in (rows, cols) planes; both finalize after the loop.
    hll_bits = np.zeros((len(_KINDS), m * _RANK_BITS), dtype=bool)
    spread_bits = np.zeros((2, rows * cols), dtype=bool)

    n = srcu.size
    block = min(_BLOCK, max(n, 1))
    sbuf = np.empty(block, dtype=np.uint64)
    dbuf = np.empty(block, dtype=np.uint64)
    kbuf = np.empty(block, dtype=np.uint64)
    gbuf = np.empty(block, dtype=np.uint64)
    ibuf = np.empty(block, dtype=np.uint64)
    tbuf = np.empty(block, dtype=np.uint64)
    fbuf = np.empty(block, dtype=np.float64)

    for start in range(0, n, block):
        stop = min(start + block, n)
        blen = stop - start
        s, d, k = sbuf[:blen], dbuf[:blen], kbuf[:blen]
        g, ix, t, f = gbuf[:blen], ibuf[:blen], tbuf[:blen], fbuf[:blen]

        np.add(srcu[start:stop], salts[_SRC], out=s)
        _splitmix_inplace(s, t)
        np.add(dstu[start:stop], salts[_DST], out=d)
        _splitmix_inplace(d, t)
        np.multiply(d, np.uint64(_LINKMUL), out=k)
        k += s
        _link_mix_inplace(k, t)

        for index, keys in ((_SRC, s), (_DST, d), (_LINK, k)):
            # Count-Min: Kirsch-Mitzenmacher double hashing, one bincount
            # per row (a power-of-two width turns the modulo into a mask).
            # Row 0 indexes with the bare key; later rows walk the key by
            # the odd second hash h2 incrementally, two passes per row.
            table = sketch.cms[index]
            np.bitwise_and(keys, mask, out=ix)
            table[0] += np.bincount(ix.view(np.int64), minlength=width)
            if depth > 1:
                # h2 must come from bits independent of the row-0 index:
                # deriving it affinely from the full key (key * ALT | 1)
                # makes h2 mod width a function of key mod width, so a
                # row-0 collision would repeat in every row and depth
                # would buy nothing.  The high 32 bits are independent of
                # the low 12-20 index bits after splitmix finalization.
                np.right_shift(keys, np.uint64(32), out=g)
                g *= np.uint64(_ALT)
                np.bitwise_or(g, np.uint64(1), out=g)
                np.add(keys, g, out=t)
                for row in range(1, depth):
                    if row > 1:
                        t += g
                    np.bitwise_and(t, mask, out=ix)
                    table[row] += np.bincount(ix.view(np.int64), minlength=width)
            # HyperLogLog: register from the top hll_p bits, rank from the
            # low 52 bits read off the float64 exponent field (exact below
            # 2**53: biased exponent eb = 1023 + floor(log2 v), so
            # rank = 1075 - eb, saturated at _RANK_CAP; v == 0 maps to
            # eb == 0 and saturates too); scatter into the flat bit
            # plane, max-reduce at finalize.
            np.bitwise_and(keys, _MASK52, out=ix)
            np.copyto(f, ix, casting="unsafe")
            expo = f.view(np.uint64)
            np.right_shift(expo, np.uint64(52), out=expo)
            np.subtract(np.uint64(1075), expo, out=expo)
            np.minimum(expo, np.uint64(_RANK_CAP), out=expo)
            np.right_shift(keys, np.uint64(64 - cfg.hll_p), out=t)
            np.left_shift(t, np.uint64(5), out=t)
            t += expo
            hll_bits[index][t.view(np.int64)] = True

        # spread bitmaps: fan-out rows hash the source, fan-in rows the
        # destination; column bits accumulate the neighbour set.
        np.bitwise_and(s, row_mask, out=ix)
        ix *= np.uint64(cols)
        np.bitwise_and(d, col_mask, out=t)
        ix += t
        spread_bits[_OUT][ix.view(np.int64)] = True
        np.bitwise_and(d, row_mask, out=ix)
        ix *= np.uint64(cols)
        np.bitwise_and(s, col_mask, out=t)
        ix += t
        spread_bits[_IN][ix.view(np.int64)] = True

    sketch.n_packets += int(n)
    ranks = np.arange(_RANK_BITS, dtype=np.uint8)
    for index in range(len(_KINDS)):
        planes = hll_bits[index].reshape(m, _RANK_BITS)
        np.maximum(
            sketch.hll[index], (planes * ranks).max(axis=1).astype(np.uint8),
            out=sketch.hll[index],
        )
    packed = np.packbits(spread_bits.reshape(2, rows, cols), axis=2)
    np.bitwise_or(sketch.spread, packed, out=sketch.spread)


def build_sketch(
    src, dst, config: SketchConfig = DEFAULT_SKETCH_CONFIG
) -> WindowSketch:
    """Sketch one window's valid ``(src, dst)`` columns in a single pass.

    The result is deterministic in ``(src, dst, config)`` — the block
    partition does not leak into the output because every accumulation is
    an elementwise add or bit-or — so equal windows sketch bit-identically
    on every backend.
    """
    srcu, dstu = _as_u64(src), _as_u64(dst)
    if srcu.shape != dstu.shape:
        raise ValueError("src and dst must have the same length")
    sketch = WindowSketch.empty(config)
    if srcu.size:
        _accumulate(sketch, srcu, dstu)
    return sketch


def sketch_products(
    src, dst, config: SketchConfig = DEFAULT_SKETCH_CONFIG
) -> Tuple[AggregateProperties, Dict[str, DegreeHistogram], Mapping[str, SketchBounds], WindowSketch]:
    """Sketch-tier counterpart of :func:`repro.streaming.kernel.fused_products`.

    Returns ``(aggregates, histograms, bounds, sketch)`` where the first
    two mirror the exact kernel's products (estimated, with the
    valid-packet count exact) and *sketch* is the mergeable summary the
    streaming fold combines across windows.
    """
    sketch = build_sketch(src, dst, config)
    return sketch.aggregates(), sketch.histograms(), sketch.bounds(), sketch
