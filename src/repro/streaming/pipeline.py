"""End-to-end streaming analysis pipeline.

``trace → N_V windows → A_t → Figure-1 quantities → histograms → pooled
differential cumulative distributions → (optional) model fits``

:func:`analyze_trace` is the one call behind the Figure-3 reproduction: it
windows a trace, computes the per-window histograms of each requested
quantity, pools them with binary-log bins, and aggregates the pooled vectors
across windows into the mean ``D(d_i)`` and standard deviation ``σ(d_i)``
that the paper plots with error bars.  Window-level work can be spread over
worker processes (:mod:`repro.streaming.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro._util.logging import get_logger
from repro._util.validation import check_positive_int
from repro.analysis.histogram import DegreeHistogram
from repro.analysis.pooling import PooledDistribution, aggregate_pooled, pool_differential_cumulative
from repro.core.zm_fit import ZMFitResult, fit_zipf_mandelbrot
from repro.streaming.aggregates import QUANTITY_NAMES, AggregateProperties, compute_aggregates, quantity_histograms
from repro.streaming.packet import PacketTrace
from repro.streaming.parallel import map_windows
from repro.streaming.sparse_image import traffic_image
from repro.streaming.window import iter_windows

__all__ = ["WindowResult", "WindowedAnalysis", "analyze_window", "analyze_windows", "analyze_trace"]

_logger = get_logger("streaming.pipeline")


@dataclass(frozen=True)
class WindowResult:
    """Per-window analysis products."""

    aggregates: AggregateProperties
    histograms: Mapping[str, DegreeHistogram]

    def pooled(self, quantity: str) -> PooledDistribution:
        """Pooled differential cumulative distribution of one quantity."""
        return pool_differential_cumulative(self.histograms[quantity])


@dataclass(frozen=True)
class WindowedAnalysis:
    """Aggregated analysis of all windows of one trace.

    Attributes
    ----------
    n_valid:
        The window size ``N_V`` used.
    windows:
        Per-window results, in stream order.
    quantities:
        The quantity names analysed (a subset of
        :data:`repro.streaming.aggregates.QUANTITY_NAMES`).
    """

    n_valid: int
    windows: Sequence[WindowResult]
    quantities: Sequence[str]
    _pooled_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def n_windows(self) -> int:
        """Number of complete windows analysed."""
        return len(self.windows)

    def pooled(self, quantity: str) -> PooledDistribution:
        """Cross-window mean-and-σ pooled distribution of one quantity (Fig. 3 data)."""
        if quantity not in self.quantities:
            raise KeyError(f"quantity {quantity!r} was not analysed; available: {list(self.quantities)}")
        if quantity not in self._pooled_cache:
            per_window = [pool_differential_cumulative(w.histograms[quantity]) for w in self.windows]
            self._pooled_cache[quantity] = aggregate_pooled(per_window)
        return self._pooled_cache[quantity]

    def merged_histogram(self, quantity: str) -> DegreeHistogram:
        """Counts of one quantity summed over every window."""
        if quantity not in self.quantities:
            raise KeyError(f"quantity {quantity!r} was not analysed; available: {list(self.quantities)}")
        merged = self.windows[0].histograms[quantity]
        for w in self.windows[1:]:
            merged = merged.merge(w.histograms[quantity])
        return merged

    def dmax(self, quantity: str) -> int:
        """Largest observed value of one quantity across all windows."""
        return max(w.histograms[quantity].dmax for w in self.windows)

    def fit_zipf_mandelbrot(self, quantity: str, **kwargs) -> ZMFitResult:
        """Fit the modified Zipf–Mandelbrot model to one quantity (Fig. 3 black line)."""
        pooled = self.pooled(quantity)
        return fit_zipf_mandelbrot(pooled, dmax=self.dmax(quantity), **kwargs)

    def aggregates_table(self) -> list:
        """Per-window Table-I aggregates, one dict row per window."""
        return [w.aggregates.as_row() for w in self.windows]


def analyze_window(window: PacketTrace) -> WindowResult:
    """Analyse a single window: build ``A_t``, aggregates, and histograms."""
    image = traffic_image(window)
    return WindowResult(
        aggregates=compute_aggregates(image),
        histograms=quantity_histograms(image),
    )


def analyze_windows(
    windows: Sequence[PacketTrace],
    *,
    n_valid: int,
    quantities: Sequence[str] = QUANTITY_NAMES,
    n_workers: int = 1,
) -> WindowedAnalysis:
    """Analyse pre-cut windows (used directly by the parallel benchmarks)."""
    unknown = set(quantities) - set(QUANTITY_NAMES)
    if unknown:
        raise ValueError(f"unknown quantities {sorted(unknown)}; valid names: {QUANTITY_NAMES}")
    results = map_windows(analyze_window, windows, n_workers=n_workers)
    if not results:
        raise ValueError("no complete windows to analyse; lower n_valid or provide a longer trace")
    return WindowedAnalysis(n_valid=n_valid, windows=results, quantities=tuple(quantities))


def analyze_trace(
    trace: PacketTrace,
    n_valid: int,
    *,
    quantities: Sequence[str] = QUANTITY_NAMES,
    n_workers: int = 1,
    max_windows: int | None = None,
) -> WindowedAnalysis:
    """Window a trace and analyse every complete ``N_V`` window.

    Parameters
    ----------
    trace:
        The packet trace to analyse.
    n_valid:
        Window size ``N_V`` in valid packets.
    quantities:
        Which Figure-1 quantities to histogram (all five by default).
    n_workers:
        Worker processes for the per-window analysis (serial by default).
    max_windows:
        Optionally cap the number of windows analysed (useful for quick
        looks at very long traces).

    Returns
    -------
    WindowedAnalysis
    """
    n_valid = check_positive_int(n_valid, "n_valid")
    windows = list(iter_windows(trace, n_valid))
    if max_windows is not None:
        windows = windows[: int(max_windows)]
    _logger.debug("analysing %d windows of %d valid packets", len(windows), n_valid)
    return analyze_windows(windows, n_valid=n_valid, quantities=quantities, n_workers=n_workers)
