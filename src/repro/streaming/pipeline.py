"""End-to-end streaming analysis pipeline.

``trace → N_V windows → A_t → Figure-1 quantities → histograms → pooled
differential cumulative distributions → (optional) model fits``

:func:`analyze_trace` is the one call behind the Figure-3 reproduction.  It
is built as a single-pass engine: windows flow through a pluggable
:class:`~repro.streaming.parallel.ExecutionBackend` into a
:class:`StreamAnalyzer`, which folds each :class:`WindowResult` into running
pooled aggregates (mean ``D(d_i)`` and ``σ(d_i)`` via
:class:`repro.analysis.moments.StreamingMoments`) and incrementally merged
histograms.  Because the fold happens in window order on every backend, the
serial, process, and streaming backends produce bit-identical pooled
distributions; because the fold state is O(bins) per quantity (plus a
few-integer Table-I row per window, droppable via
``StreamAnalyzer(keep_aggregates=False)``), the streaming backend can
analyse an on-disk trace far larger than memory
(``analyze_trace(path, ..., backend="streaming", chunk_packets=...)``).
"""

from __future__ import annotations

import functools
import itertools
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro._util.logging import get_logger
from repro._util.validation import check_positive_int
from repro.analysis.histogram import DegreeHistogram
from repro.analysis.moments import StreamingMoments
from repro.analysis.pooling import PooledDistribution, pool_differential_cumulative
from repro.core.zm_fit import ZMFitResult, fit_zipf_mandelbrot
import repro.streaming.kernel as _kernel
import repro.streaming.shm as _shm
from repro.streaming.aggregates import QUANTITY_NAMES, AggregateProperties, compute_aggregates, quantity_histograms
from repro.streaming.packet import PacketTrace
from repro.streaming.parallel import (
    ExecutionBackend,
    ProcessBackend,
    StreamingBackend,
    get_backend,
)
from repro.streaming.sketch import (
    DEFAULT_SKETCH_CONFIG,
    SketchBounds,
    SketchConfig,
    WindowSketch,
    sketch_products,
)
from repro.streaming.sparse_image import traffic_image
from repro.streaming.trace_io import ANALYSIS_COLUMNS, iter_trace_chunks, rechunk
from repro.streaming.window import ChunkedWindower, iter_batches, iter_windows

__all__ = [
    "MODE_NAMES",
    "WindowResult",
    "WindowedAnalysis",
    "StreamAnalyzer",
    "analyze_window",
    "analyze_window_image",
    "analyze_window_sketch",
    "analyze_windows",
    "analyze_trace",
    "default_batch_windows",
    "fold_windows",
    "iter_window_results",
]

#: Per-window analysis modes: the exact fused kernel, or the sub-linear
#: Count-Min/HyperLogLog sketch tier (:mod:`repro.streaming.sketch`).
MODE_NAMES = ("exact", "sketch")


def _resolve_sketch_config(mode: str, sketch: "SketchConfig | None") -> "SketchConfig | None":
    """Validate *mode* and pin the sketch configuration it implies.

    Returns ``None`` for exact mode (rejecting a stray sketch config, which
    would otherwise be silently ignored) and a concrete
    :class:`~repro.streaming.sketch.SketchConfig` for sketch mode.
    """
    if mode not in MODE_NAMES:
        raise ValueError(f"unknown mode {mode!r}; valid modes: {MODE_NAMES}")
    if mode == "exact":
        if sketch is not None:
            raise ValueError("a sketch config was supplied but mode is 'exact'")
        return None
    return sketch if sketch is not None else DEFAULT_SKETCH_CONFIG

_logger = get_logger("streaming.pipeline")

_NO_WINDOWS_MESSAGE = "no complete windows to analyse; lower n_valid or provide a longer trace"


@dataclass(frozen=True)
class WindowResult:
    """Per-window analysis products.

    ``bounds`` and ``sketch`` are populated only on sketch-mode results:
    the per-quantity error guarantees of the estimates, and the mergeable
    :class:`~repro.streaming.sketch.WindowSketch` the streaming fold
    combines across windows.  Exact-kernel results leave both ``None``.
    """

    aggregates: AggregateProperties
    histograms: Mapping[str, DegreeHistogram]
    bounds: Mapping[str, SketchBounds] | None = None
    sketch: WindowSketch | None = None

    def pooled(self, quantity: str) -> PooledDistribution:
        """Pooled differential cumulative distribution of one quantity."""
        return pool_differential_cumulative(self.histograms[quantity])


def _fold_pooled(per_window: Iterable[PooledDistribution]) -> PooledDistribution:
    """Fold per-window pooled vectors into the cross-window mean/σ.

    The one aggregation used everywhere — by :class:`StreamAnalyzer` during
    the single pass and by :meth:`WindowedAnalysis.pooled` for directly
    constructed instances — so the result is bit-identical regardless of how
    the analysis was produced.
    """
    moments = StreamingMoments()
    total = 0
    for pooled in per_window:
        moments.update(pooled.values)
        total += pooled.total
    edges = 2 ** np.arange(moments.n_bins, dtype=np.int64)
    return PooledDistribution(
        bin_edges=edges, values=moments.mean(), sigma=moments.std(ddof=0), total=total
    )


@dataclass(frozen=True)
class _StreamState:
    """Products folded by :class:`StreamAnalyzer` during a single pass.

    Carried by :class:`WindowedAnalysis` so pooled distributions, merged
    histograms, and the aggregates table remain available even when the
    per-window results themselves were not retained (bounded-memory runs).
    """

    n_windows: int
    pooled: Mapping[str, PooledDistribution]
    merged: Mapping[str, DegreeHistogram]
    aggregate_rows: Sequence[AggregateProperties]
    stats: Mapping[str, object]
    #: sketch-mode extras: the cross-window merged sketch and the error
    #: bounds of its estimates (``None`` on exact-mode analyses)
    sketch: WindowSketch | None = None
    bounds: Mapping[str, SketchBounds] | None = None


@dataclass(frozen=True, eq=False)
class WindowedAnalysis:
    """Aggregated analysis of all windows of one trace.

    Attributes
    ----------
    n_valid:
        The window size ``N_V`` used.
    windows:
        Per-window results, in stream order.  Empty when the analysis was
        produced by a bounded-memory streaming run (``keep_windows=False``);
        the cross-window products below remain available either way.
    quantities:
        The quantity names analysed (a subset of
        :data:`repro.streaming.aggregates.QUANTITY_NAMES`).
    """

    n_valid: int
    windows: Sequence[WindowResult]
    quantities: Sequence[str]
    _stream: _StreamState | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        # per-instance memo for lazily computed cross-window products; a plain
        # attribute (not a dataclass field) so it never leaks into equality,
        # repr, or pickles — see __getstate__/__setstate__
        object.__setattr__(self, "_memo", {})

    def __eq__(self, other: object) -> bool:
        # field-wise dataclass equality would compare streamed analyses
        # (windows=()) solely by n_valid/quantities; compare the actual
        # analysis products instead — including σ, which is part of the
        # cross-backend bit-identity guarantee
        if not isinstance(other, WindowedAnalysis):
            return NotImplemented
        if (
            self.n_valid != other.n_valid
            or tuple(self.quantities) != tuple(other.quantities)
            or self.n_windows != other.n_windows
        ):
            return False

        def same_optional(a, b) -> bool:
            if a is None or b is None:
                return (a is None) == (b is None)
            return bool(np.array_equal(a, b))

        for q in self.quantities:
            mine, theirs = self.pooled(q), other.pooled(q)
            if not (
                np.array_equal(mine.bin_edges, theirs.bin_edges)
                and np.array_equal(mine.values, theirs.values)
                and same_optional(mine.sigma, theirs.sigma)
                and mine.total == theirs.total
            ):
                return False
        return self.aggregates_table() == other.aggregates_table()

    def __hash__(self) -> int:
        # coarse but consistent with __eq__ (equal analyses share these keys)
        return hash((self.n_valid, tuple(self.quantities), self.n_windows))

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_memo", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__["_memo"] = {}

    @property
    def n_windows(self) -> int:
        """Number of complete windows analysed."""
        return self._stream.n_windows if self._stream is not None else len(self.windows)

    @property
    def engine_stats(self) -> Mapping[str, object]:
        """Execution statistics recorded by the single-pass engine.

        Keys (when produced by :func:`analyze_trace`): ``backend``, ``mode``,
        and for chunked input also ``max_buffered_packets`` and
        ``n_chunks``.  Empty for analyses built directly from window
        results.
        """
        return dict(self._stream.stats) if self._stream is not None else {}

    @property
    def mode(self) -> str:
        """Which per-window analysis produced this: ``"exact"`` or ``"sketch"``."""
        if self._stream is not None:
            return str(self._stream.stats.get("mode", "exact"))
        return "exact"

    @property
    def sketch(self) -> WindowSketch | None:
        """The cross-window merged sketch (sketch-mode analyses only)."""
        return self._stream.sketch if self._stream is not None else None

    @property
    def bounds(self) -> Mapping[str, SketchBounds] | None:
        """Per-quantity error bounds of the estimates (sketch mode only).

        Keyed by quantity name plus the Table-I aggregate names; ``None``
        on exact analyses, whose products carry no estimation error.
        """
        if self._stream is not None and self._stream.bounds is not None:
            return dict(self._stream.bounds)
        return None

    def _check_quantity(self, quantity: str) -> None:
        if quantity not in self.quantities:
            raise KeyError(f"quantity {quantity!r} was not analysed; available: {list(self.quantities)}")

    def pooled(self, quantity: str) -> PooledDistribution:
        """Cross-window mean-and-σ pooled distribution of one quantity (Fig. 3 data).

        Computed with the same in-order streaming fold as the engine, so a
        directly-constructed analysis compares equal to an engine-produced
        one over the same windows.  (The Welford fold agrees with the
        stacked two-pass :func:`repro.analysis.pooling.aggregate_pooled`
        only to floating-point tolerance, not bitwise — they are different
        computations of the same moments.)
        """
        self._check_quantity(quantity)
        if self._stream is not None:
            return self._stream.pooled[quantity]
        memo = self._memo
        if ("pooled", quantity) not in memo:
            memo[("pooled", quantity)] = _fold_pooled(
                pool_differential_cumulative(w.histograms[quantity]) for w in self.windows
            )
        return memo[("pooled", quantity)]

    def merged_histogram(self, quantity: str) -> DegreeHistogram:
        """Counts of one quantity summed over every window."""
        self._check_quantity(quantity)
        if self._stream is not None:
            return self._stream.merged[quantity]
        memo = self._memo
        if ("merged", quantity) not in memo:
            merged = self.windows[0].histograms[quantity]
            for w in self.windows[1:]:
                merged = merged.merge(w.histograms[quantity])
            memo[("merged", quantity)] = merged
        return memo[("merged", quantity)]

    def dmax(self, quantity: str) -> int:
        """Largest observed value of one quantity across all windows."""
        self._check_quantity(quantity)
        if self._stream is not None:
            return self._stream.merged[quantity].dmax
        return max(w.histograms[quantity].dmax for w in self.windows)

    def fit_zipf_mandelbrot(self, quantity: str, **kwargs) -> ZMFitResult:
        """Fit the modified Zipf–Mandelbrot model to one quantity (Fig. 3 black line)."""
        pooled = self.pooled(quantity)
        return fit_zipf_mandelbrot(pooled, dmax=self.dmax(quantity), **kwargs)

    def aggregates_table(self) -> list:
        """Per-window Table-I aggregates, one dict row per window."""
        if self._stream is not None:
            return [aggregates.as_row() for aggregates in self._stream.aggregate_rows]
        return [w.aggregates.as_row() for w in self.windows]


class StreamAnalyzer:
    """Incremental consumer folding window results into running aggregates.

    Feed :class:`WindowResult`\\ s in stream order via :meth:`update`; the
    analyzer maintains, per quantity, a running pooled mean/σ
    (:class:`~repro.analysis.moments.StreamingMoments` over the per-window
    pooled vectors) and an incrementally merged histogram, plus (by default)
    the Table-I aggregates row per window.  The distribution fold state is
    O(bins) — independent of the number of windows — so arbitrarily long
    traces can be analysed in a single pass without retaining per-window
    products (``keep_windows=False``, the default); the aggregates table is
    the one O(windows) product kept, a few integers per window — pass
    ``keep_aggregates=False`` to drop it too on unbounded streams.

    The fold is order-sensitive in floating point; every execution backend
    yields results in window order, which makes the resulting pooled
    distributions bit-identical across backends.
    """

    def __init__(
        self,
        n_valid: int,
        quantities: Sequence[str] = QUANTITY_NAMES,
        *,
        keep_windows: bool = False,
        keep_aggregates: bool = True,
        mode: str = "exact",
        sketch: SketchConfig | None = None,
    ) -> None:
        self.n_valid = check_positive_int(n_valid, "n_valid")
        unknown = set(quantities) - set(QUANTITY_NAMES)
        if unknown:
            raise ValueError(f"unknown quantities {sorted(unknown)}; valid names: {QUANTITY_NAMES}")
        self.quantities = tuple(quantities)
        self.sketch_config = _resolve_sketch_config(mode, sketch)
        self.mode = mode
        self._moments = {q: StreamingMoments() for q in self.quantities}
        self._totals = {q: 0 for q in self.quantities}
        # merged histograms are folded as growing dense count buffers: one
        # int64 scatter-add per window instead of a DegreeHistogram
        # re-validation per merge — integer sums, so the final histogram is
        # identical to chained DegreeHistogram.merge calls.  In sketch mode
        # the dense buffers are replaced by a single merged WindowSketch
        # (Count-Min add / HyperLogLog max / bitmap or — associative, so
        # the fold is invariant to how the window stream was chunked) and
        # merged histograms are estimated from it on demand.
        self._merged_dense: dict[str, np.ndarray] = (
            {} if self.sketch_config is not None
            else {q: np.zeros(0, dtype=np.int64) for q in self.quantities}
        )
        self._merged_sketch: WindowSketch | None = None
        self._aggregates: list[AggregateProperties] | None = [] if keep_aggregates else None
        self._windows: list[WindowResult] | None = [] if keep_windows else None
        self._n_windows = 0

    @property
    def n_windows(self) -> int:
        """Number of window results folded in so far."""
        return self._n_windows

    def update(
        self,
        result: WindowResult,
        *,
        pooled: Mapping[str, PooledDistribution] | None = None,
    ) -> None:
        """Fold one window result into the running aggregates.

        *pooled* optionally supplies this window's already-pooled
        distributions (keyed by quantity) so a second consumer of the same
        result stream — e.g. the scenario runner's phase segmenter — shares
        the pooling work instead of repeating it; entries must equal
        ``pool_differential_cumulative(result.histograms[q])``.
        """
        self._n_windows += 1
        if self._aggregates is not None:
            self._aggregates.append(result.aggregates)
        for quantity in self.quantities:
            histogram = result.histograms[quantity]
            window_pooled = (
                pooled[quantity] if pooled is not None and quantity in pooled
                else pool_differential_cumulative(histogram)
            )
            self._moments[quantity].update(window_pooled.values)
            self._totals[quantity] += window_pooled.total
            if self.sketch_config is not None:
                continue
            dense = self._merged_dense[quantity]
            if histogram.dmax > dense.size:
                grown = np.zeros(histogram.dmax, dtype=np.int64)
                grown[: dense.size] = dense
                dense = self._merged_dense[quantity] = grown
            if histogram.degrees.size:
                # degrees are unique, so the fancy scatter-add is exact
                dense[histogram.degrees - 1] += histogram.counts
        if self.sketch_config is not None:
            if result.sketch is None:
                raise ValueError(
                    "sketch-mode StreamAnalyzer was fed a window result without a "
                    "sketch; produce results via analyze_window_sketch / mode='sketch'"
                )
            if result.sketch.config != self.sketch_config:
                raise ValueError("window sketch was built under a different SketchConfig")
            if self._merged_sketch is None:
                self._merged_sketch = result.sketch.copy()
            else:
                self._merged_sketch.merge_into(result.sketch)
        if self._windows is not None:
            self._windows.append(result)

    def pooled(self, quantity: str) -> PooledDistribution:
        """Current cross-window pooled distribution of one quantity."""
        moments = self._moments[quantity]
        edges = 2 ** np.arange(moments.n_bins, dtype=np.int64)
        return PooledDistribution(
            bin_edges=edges,
            values=moments.mean(),
            sigma=moments.std(ddof=0),
            total=self._totals[quantity],
        )

    def merged_histogram(self, quantity: str) -> DegreeHistogram:
        """Current counts of one quantity summed over the folded windows.

        In sketch mode this is estimated from the merged sketch — sharper
        than merging the per-window estimates, because bucket sums combine
        before the histogram is read off.
        """
        if self.sketch_config is not None:
            if self._merged_sketch is None:
                return DegreeHistogram._from_dense_trusted(np.zeros(0, dtype=np.int64))
            return self._merged_sketch.histograms()[quantity]
        return DegreeHistogram._from_dense_trusted(self._merged_dense[quantity])

    def snapshot(self) -> dict:
        """Exact fold state for service checkpoints.

        Captures the raw Welford accumulators, totals, merged dense buffers
        (or the merged sketch), the aggregates table, and the window count —
        everything :meth:`update` mutates — as copies, so restoring and
        continuing the fold is bit-identical to never having stopped.
        Raises on ``keep_windows`` analyzers: per-window results are
        unbounded state the checkpoint layer deliberately does not persist
        (the service always folds with ``keep_windows=False``).
        """
        if self._windows is not None:
            raise ValueError("keep_windows analyzers cannot snapshot; per-window results are not checkpointed")
        return {
            "n_valid": int(self.n_valid),
            "quantities": tuple(self.quantities),
            "mode": self.mode,
            "n_windows": int(self._n_windows),
            "moments": {q: self._moments[q].state() for q in self.quantities},
            "totals": {q: int(self._totals[q]) for q in self.quantities},
            "merged_dense": {q: arr.copy() for q, arr in self._merged_dense.items()},
            "merged_sketch": self._merged_sketch.copy() if self._merged_sketch is not None else None,
            "aggregates": tuple(self._aggregates) if self._aggregates is not None else None,
        }

    def restore(self, state: Mapping[str, object]) -> None:
        """Replace the fold state with a :meth:`snapshot` payload.

        The analyzer must have been constructed with the same ``n_valid``,
        ``quantities``, and ``mode`` as the one that was snapshotted.
        """
        if self._windows is not None:
            raise ValueError("keep_windows analyzers cannot restore from a snapshot")
        if int(state["n_valid"]) != self.n_valid:
            raise ValueError("snapshot n_valid does not match this analyzer")
        if tuple(state["quantities"]) != self.quantities:
            raise ValueError("snapshot quantities do not match this analyzer")
        if state["mode"] != self.mode:
            raise ValueError("snapshot mode does not match this analyzer")
        self._n_windows = int(state["n_windows"])
        self._moments = {q: StreamingMoments.from_state(state["moments"][q]) for q in self.quantities}
        self._totals = {q: int(state["totals"][q]) for q in self.quantities}
        if self.sketch_config is not None:
            self._merged_dense = {}
            sketch = state["merged_sketch"]
            if sketch is not None and sketch.config != self.sketch_config:
                raise ValueError("snapshot sketch was built under a different SketchConfig")
            self._merged_sketch = sketch.copy() if sketch is not None else None
        else:
            self._merged_dense = {
                q: np.asarray(state["merged_dense"][q], dtype=np.int64).copy()
                for q in self.quantities
            }
            self._merged_sketch = None
        aggregates = state["aggregates"]
        if self._aggregates is not None:
            self._aggregates = list(aggregates) if aggregates is not None else []

    def result(self, *, stats: Mapping[str, object] | None = None) -> WindowedAnalysis:
        """Finalize into a :class:`WindowedAnalysis` (raises if no windows)."""
        if self.n_windows == 0:
            raise ValueError(_NO_WINDOWS_MESSAGE)
        run_stats = dict(stats or {})
        run_stats.setdefault("mode", self.mode)
        if self._merged_sketch is not None:
            merged_estimates = self._merged_sketch.histograms()
            merged = {q: merged_estimates[q] for q in self.quantities}
        else:
            merged = {q: self.merged_histogram(q) for q in self.quantities}
        state = _StreamState(
            n_windows=self.n_windows,
            pooled={q: self.pooled(q) for q in self.quantities},
            merged=merged,
            aggregate_rows=tuple(self._aggregates or ()),
            stats=run_stats,
            sketch=self._merged_sketch,
            bounds=self._merged_sketch.bounds() if self._merged_sketch is not None else None,
        )
        return WindowedAnalysis(
            n_valid=self.n_valid,
            windows=tuple(self._windows) if self._windows is not None else (),
            quantities=self.quantities,
            _stream=state,
        )


def analyze_window(window: PacketTrace) -> WindowResult:
    """Analyse a single window via the fused sort-based kernel.

    Computes the Table-I aggregates and all five Figure-1 histograms in one
    sorted pass over packed ``(src << 32) | dst`` keys
    (:func:`repro.streaming.kernel.fused_products`) — the sparse ``A_t``
    matrix is no longer built here.  Windows whose endpoint ids exceed the
    packable range fall back to the matrix route transparently; results are
    byte-identical either way (see :func:`analyze_window_image`).
    """
    aggregates, histograms = _kernel.window_products(window)
    return WindowResult(aggregates=aggregates, histograms=histograms)


def analyze_window_image(window: PacketTrace) -> WindowResult:
    """Analyse a single window through the sparse ``A_t`` matrix (the oracle).

    The pre-kernel implementation, kept as an independently-coded
    cross-check: ``tests/test_streaming_kernel.py`` pins
    ``analyze_window(w) == analyze_window_image(w)`` exactly.  Use it when
    you want the :class:`~repro.streaming.sparse_image.TrafficImage`
    compatibility view of the computation.
    """
    image = traffic_image(window)
    return WindowResult(
        aggregates=compute_aggregates(image),
        histograms=quantity_histograms(image),
    )


def analyze_window_sketch(
    window: PacketTrace, config: SketchConfig = DEFAULT_SKETCH_CONFIG
) -> WindowResult:
    """Analyse a single window via the sub-linear sketch tier.

    Drop-in sibling of :func:`analyze_window`: same valid-packet columns
    in, same :class:`WindowResult` shape out — but the aggregates and
    histograms are Count-Min/HyperLogLog *estimates* whose guarantees are
    recorded on ``result.bounds``, and ``result.sketch`` carries the
    mergeable summary so a streaming fold combines windows in O(sketch)
    memory.  Runtime is data-independent; the exact kernel remains the
    oracle (``tests/test_sketch_oracle.py``).
    """
    src, dst = _kernel.valid_columns(window)
    aggregates, histograms, bounds, sketch = sketch_products(src, dst, config)
    return WindowResult(
        aggregates=aggregates, histograms=histograms, bounds=bounds, sketch=sketch
    )


#: Result pair moved through the engine: the window's products plus its
#: per-quantity pooled vectors when a worker already computed them (the
#: batched process backend pools in the worker; other paths pool at fold
#: time, so the second element is ``None``).
_ResultPair = Tuple[WindowResult, Optional[Mapping[str, PooledDistribution]]]

#: Windows grouped into one streaming-backend queue slot by default.
STREAM_BATCH_WINDOWS = 4

#: Upper bound on windows per process-backend task (keeps payloads modest).
MAX_BATCH_WINDOWS = 64

#: Target worker tasks per worker for the batched process backend.
_TASKS_PER_WORKER = 4


def default_batch_windows(n_windows: int, n_workers: int) -> int:
    """Windows packed into one process-backend task.

    Sized so the workload splits into ~``4 × n_workers`` tasks (enough for
    the pool to balance uneven window costs), capped at
    :data:`MAX_BATCH_WINDOWS` so a single task's payload stays modest.
    """
    n_windows = check_positive_int(n_windows, "n_windows")
    n_workers = check_positive_int(n_workers, "n_workers")
    ideal = -(-n_windows // (_TASKS_PER_WORKER * n_workers))
    return max(1, min(ideal, MAX_BATCH_WINDOWS))


def _analyze_payload_batch(
    batch: Tuple[_kernel.WindowPayload, ...],
    quantities: Sequence[str] = QUANTITY_NAMES,
) -> Tuple[_ResultPair, ...]:
    """Worker task of the batched process backend.

    Analyses a batch of shipped window payloads and pools the requested
    *quantities* while still in the worker, so the parent's fold is a pure
    accumulate.  The returned pairs are compact: four aggregate integers,
    five small (degrees, counts) histogram arrays, and one
    ~``log2(N_V)``-bin pooled vector per pooled quantity per window.
    """
    pairs = []
    for payload in batch:
        aggregates, histograms = _kernel.payload_products(payload)
        result = WindowResult(aggregates=aggregates, histograms=histograms)
        pooled = {q: pool_differential_cumulative(histograms[q]) for q in quantities}
        pairs.append((result, pooled))
    return tuple(pairs)


def _analyze_ref_batch(
    batch: Tuple["_shm.ShmWindowRef", ...],
    quantities: Sequence[str] = QUANTITY_NAMES,
) -> Tuple[_ResultPair, ...]:
    """Shared-memory sibling of :func:`_analyze_payload_batch`.

    The batch carries :class:`~repro.streaming.shm.ShmWindowRef` records
    instead of column arrays; the worker attaches the published segment and
    analyses zero-copy views of the shared pages.  The returned pairs are
    fresh arrays (aggregates, histograms, pooled vectors), so nothing
    aliases the segment once the task returns.
    """
    pairs = []
    with _shm.attached_payloads() as resolve:
        for ref in batch:
            aggregates, histograms = _kernel.payload_products(resolve(ref))
            result = WindowResult(aggregates=aggregates, histograms=histograms)
            pooled = {q: pool_differential_cumulative(histograms[q]) for q in quantities}
            pairs.append((result, pooled))
    return tuple(pairs)


def _analyze_ref_batch_sketch(
    batch: Tuple["_shm.ShmWindowRef", ...],
    quantities: Sequence[str] = QUANTITY_NAMES,
    config: SketchConfig = DEFAULT_SKETCH_CONFIG,
) -> Tuple[_ResultPair, ...]:
    """Sketch-mode worker task over shared-memory window references."""
    pairs = []
    with _shm.attached_payloads() as resolve:
        for ref in batch:
            result = _sketch_payload_result(resolve(ref), config)
            pooled = {q: pool_differential_cumulative(result.histograms[q]) for q in quantities}
            pairs.append((result, pooled))
    return tuple(pairs)


def _sketch_payload_result(
    payload: _kernel.WindowPayload, config: SketchConfig
) -> WindowResult:
    """Sketch one shipped window payload (worker side of the process backend)."""
    src, dst = _kernel.payload_columns(payload)
    aggregates, histograms, bounds, sketch = sketch_products(src, dst, config)
    return WindowResult(
        aggregates=aggregates, histograms=histograms, bounds=bounds, sketch=sketch
    )


def _analyze_payload_batch_sketch(
    batch: Tuple[_kernel.WindowPayload, ...],
    quantities: Sequence[str] = QUANTITY_NAMES,
    config: SketchConfig = DEFAULT_SKETCH_CONFIG,
) -> Tuple[_ResultPair, ...]:
    """Sketch-mode worker task of the batched process backend.

    Same shape as :func:`_analyze_payload_batch` (results plus worker-side
    pooled vectors); each result additionally ships its ~0.4 MB sketch so
    the parent can fold by merging.
    """
    pairs = []
    for payload in batch:
        result = _sketch_payload_result(payload, config)
        pooled = {q: pool_differential_cumulative(result.histograms[q]) for q in quantities}
        pairs.append((result, pooled))
    return tuple(pairs)


def _analyze_window_batch(batch: Tuple[PacketTrace, ...]) -> Tuple[WindowResult, ...]:
    """In-process batch analysis (one streaming-backend queue slot)."""
    return tuple(analyze_window(window) for window in batch)


def _analyze_window_batch_sketch(
    batch: Tuple[PacketTrace, ...], config: SketchConfig = DEFAULT_SKETCH_CONFIG
) -> Tuple[WindowResult, ...]:
    """Sketch-mode in-process batch analysis (one streaming queue slot)."""
    return tuple(analyze_window_sketch(window, config) for window in batch)


def iter_window_results(
    backend_impl: ExecutionBackend,
    windows: Iterable[PacketTrace],
    *,
    batch_windows: int | None = None,
    quantities: Sequence[str] = QUANTITY_NAMES,
    mode: str = "exact",
    sketch: SketchConfig | None = None,
) -> Iterator[_ResultPair]:
    """Map windows through a backend, yielding ``(result, pooled)`` in order.

    The batching strategy is chosen per backend:

    * **process** — windows are packed into raw-column payloads
      (:func:`repro.streaming.kernel.window_payload`) and shipped in batches
      of *batch_windows* (default :func:`default_batch_windows`), one batch
      per task; workers return results *and* the pooled vectors of
      *quantities*, so per-window pickle traffic and task count both drop
      by ~an order of magnitude versus mapping whole :class:`PacketTrace`
      windows one at a time.  How the column bytes reach the workers is the
      backend's ``payload_transport``: ``"shm"`` (the default where
      supported) publishes them once into a shared-memory segment
      (:mod:`repro.streaming.shm`) and ships only references, ``"pickle"``
      ships the bytes through each task — bit-identical results either way.
      When the backend cannot occupy more than one worker the map degrades
      to the serial path (identical code, no payload round-trip).
    * **streaming** — windows move through the prefetch queue in batches of
      *batch_windows* (default :data:`STREAM_BATCH_WINDOWS`), cutting
      per-window queue synchronisation; at most ``(prefetch + 1) × batch``
      windows are buffered.
    * **serial / custom** — the plain in-order map, no batching overhead.

    Every strategy yields results in window order, so the downstream fold —
    and therefore the pooled output — is bit-identical across all of them.
    In sketch mode (``mode="sketch"``) the same dispatch applies with the
    sketch-tier per-window analysis; sketched results are likewise
    bit-identical among themselves across backends and batch sizes.
    """
    sketch_config = _resolve_sketch_config(mode, sketch)
    if batch_windows is not None:
        batch_windows = check_positive_int(batch_windows, "batch_windows")
    if sketch_config is not None:
        window_task = functools.partial(analyze_window_sketch, config=sketch_config)
    else:
        window_task = analyze_window
    if isinstance(backend_impl, ProcessBackend):
        if backend_impl.n_workers <= 1:
            # nothing to parallelise: stay lazy and in-process, identical to
            # the serial backend (no payload packing, one window at a time)
            _logger.debug("process backend has a single worker; analysing in-process")
            for window in windows:
                yield window_task(window), None
            return
        # pack each window as it streams past — one window alive at a time,
        # so peak memory is the column payloads, never payloads + records;
        # the packing (contiguous column extraction) is the same work the
        # kernel's valid_columns would do, so nothing is paid twice
        payloads = [_kernel.window_payload(w) for w in windows]
        n = len(payloads)
        if backend_impl.downgraded(n):  # n <= 1: cannot occupy a second worker
            _logger.debug("process backend cannot parallelise %d window(s); analysing in-process", n)
            for payload in payloads:
                if sketch_config is not None:
                    yield _sketch_payload_result(payload, sketch_config), None
                else:
                    aggregates, histograms = _kernel.payload_products(payload)
                    yield WindowResult(aggregates=aggregates, histograms=histograms), None
            return
        batch = batch_windows or default_batch_windows(n, backend_impl.n_workers)
        # an oversized explicit batch must not starve the pool below one
        # task per worker
        batch = min(batch, max(1, -(-n // backend_impl.n_workers)))
        transport = backend_impl.payload_transport
        if transport == "shm":
            # zero-copy path: columns go into one named shared-memory
            # segment; tasks carry only (segment, offset, dtype) references
            # and workers analyse views of the shared pages.  The segment is
            # closed and unlinked the moment the fold completes (or fails).
            published = _shm.publish_payloads(payloads)
            del payloads  # the segment holds the bytes now; drop the heap copy
            batches = list(iter_batches(published.refs, batch))
            _logger.debug(
                "process backend: %d windows -> %d batched tasks of <= %d windows "
                "(shm transport, segment %s, %d bytes)",
                n, len(batches), batch, published.segment, published.nbytes,
            )
            if sketch_config is not None:
                task = functools.partial(
                    _analyze_ref_batch_sketch,
                    quantities=tuple(quantities),
                    config=sketch_config,
                )
            else:
                task = functools.partial(_analyze_ref_batch, quantities=tuple(quantities))
            with published:
                for pair_batch in backend_impl.map(task, batches):
                    yield from pair_batch
            return
        batches = list(iter_batches(payloads, batch))
        _logger.debug(
            "process backend: %d windows -> %d batched tasks of <= %d windows (pickle transport)",
            n, len(batches), batch,
        )
        if sketch_config is not None:
            task = functools.partial(
                _analyze_payload_batch_sketch,
                quantities=tuple(quantities),
                config=sketch_config,
            )
        else:
            task = functools.partial(_analyze_payload_batch, quantities=tuple(quantities))
        for pair_batch in backend_impl.map(task, batches):
            yield from pair_batch
        return
    if isinstance(backend_impl, StreamingBackend):
        batch = batch_windows or STREAM_BATCH_WINDOWS
        _logger.debug("streaming backend: prefetching window batches of %d", batch)
        if sketch_config is not None:
            batch_task = functools.partial(_analyze_window_batch_sketch, config=sketch_config)
        else:
            batch_task = _analyze_window_batch
        for result_batch in backend_impl.map(batch_task, iter_batches(windows, batch)):
            for result in result_batch:
                yield result, None
        return
    for result in backend_impl.map(window_task, windows):
        yield result, None


def fold_windows(
    backend_impl: ExecutionBackend,
    windows: Iterable[PacketTrace],
    folder,
    *,
    consumers: Sequence = (),
    batch_windows: int | None = None,
    mode: str = "exact",
    sketch: SketchConfig | None = None,
) -> int:
    """THE window-fold loop: map windows through a backend into *folder*.

    This is the one code path every execution surface drives — one-shot
    :func:`analyze_trace`, :func:`repro.scenarios.run.analyze_scenario`
    (and therefore every campaign worker cell), and the resident
    ``repro serve`` daemon (:mod:`repro.service.engine`) all fold through
    this exact loop, which is what makes their pooled outputs and alarm
    sequences bit-identical over the same window stream.

    Parameters
    ----------
    backend_impl:
        The execution backend mapping windows to results.
    windows:
        The in-order window stream (any iterable of :class:`PacketTrace`).
    folder:
        The primary fold target — a
        :class:`StreamAnalyzer`-shaped consumer (``update(result, pooled=)``
        / ``quantities``), e.g. a :class:`StreamAnalyzer` or a
        :class:`~repro.detect.analyzer.DetectingAnalyzer` wrapping one.
    consumers:
        Additional same-shaped consumers riding the identical in-order
        result stream (e.g. the scenario runner's phase segmenter).  When
        any are present — or when *folder* is itself a multi-consumer
        wrapper — each window is pooled exactly once and the vectors are
        shared, instead of every consumer re-pooling.
    batch_windows / mode / sketch:
        As in :func:`iter_window_results`.

    Returns
    -------
    int
        Number of windows folded by this call.
    """
    quantities = tuple(folder.quantities)
    pairs = iter_window_results(
        backend_impl, windows, batch_windows=batch_windows,
        quantities=quantities, mode=mode, sketch=sketch,
    )
    # pre-pool only when more than one consumer would otherwise repeat the
    # pooling work; a bare StreamAnalyzer pools internally either way, and
    # both paths run pool_differential_cumulative on the same histogram, so
    # the folded numbers are bit-identical regardless of this choice
    share_pooling = bool(consumers) or not isinstance(folder, StreamAnalyzer)
    n_folded = 0
    for result, pooled in pairs:
        if pooled is None and share_pooling:
            pooled = {
                q: pool_differential_cumulative(result.histograms[q]) for q in quantities
            }
        folder.update(result, pooled=pooled)
        for consumer in consumers:
            consumer.update(result, pooled=pooled)
        n_folded += 1
    return n_folded


def analyze_windows(
    windows: Sequence[PacketTrace],
    *,
    n_valid: int,
    quantities: Sequence[str] = QUANTITY_NAMES,
    n_workers: int | None = None,
    backend: Union[str, ExecutionBackend, None] = None,
    keep_windows: bool = True,
    batch_windows: int | None = None,
    mode: str = "exact",
    sketch: SketchConfig | None = None,
    payload_transport: str | None = None,
) -> WindowedAnalysis:
    """Analyse pre-cut windows (used directly by the parallel benchmarks)."""
    backend_impl = get_backend(backend, n_workers=n_workers, payload_transport=payload_transport)
    analyzer = StreamAnalyzer(
        n_valid, quantities, keep_windows=keep_windows, mode=mode, sketch=sketch
    )
    fold_windows(
        backend_impl, windows, analyzer, batch_windows=batch_windows,
        mode=mode, sketch=analyzer.sketch_config,
    )
    return analyzer.result(stats=_engine_stats(backend_impl))


def _engine_stats(backend_impl: ExecutionBackend) -> dict:
    """Base ``engine_stats`` of one run: backend name plus its transport."""
    stats: dict[str, object] = {"backend": backend_impl.name}
    if isinstance(backend_impl, ProcessBackend):
        stats["payload_transport"] = backend_impl.payload_transport
    return stats


def analyze_trace(
    trace: Union[PacketTrace, str, os.PathLike, Iterable[PacketTrace]],
    n_valid: int,
    *,
    quantities: Sequence[str] = QUANTITY_NAMES,
    n_workers: int | None = None,
    max_windows: int | None = None,
    backend: Union[str, ExecutionBackend, None] = None,
    chunk_packets: int | None = None,
    keep_windows: bool | None = None,
    batch_windows: int | None = None,
    mode: str = "exact",
    sketch: SketchConfig | None = None,
    payload_transport: str | None = None,
    mmap: bool = False,
) -> WindowedAnalysis:
    """Window a trace and analyse every complete ``N_V`` window in one pass.

    Parameters
    ----------
    trace:
        The packet trace to analyse: an in-memory :class:`PacketTrace`, the
        path of a stored trace (v1 ``.npz`` or v2 sharded directory — the
        latter is read shard-by-shard, never whole), or an iterator of trace
        chunks.
    n_valid:
        Window size ``N_V`` in valid packets.
    quantities:
        Which Figure-1 quantities to histogram (all five by default).
    n_workers:
        Worker processes for the per-window analysis.  Unset (``None``)
        means serial, or an automatic worker count under
        ``backend="process"``; an explicit value is honoured exactly.
    max_windows:
        Optionally cap the number of windows analysed (useful for quick
        looks at very long traces).
    backend:
        Execution backend: ``"serial"``, ``"process"``, ``"streaming"``, an
        :class:`~repro.streaming.parallel.ExecutionBackend` instance, or
        ``None`` to derive serial/process from *n_workers* as before.  All
        backends produce bit-identical pooled distributions.
    chunk_packets:
        Read/cut the trace in chunks of this many packets.  With the
        streaming backend this bounds peak memory by the chunk size (plus
        one window) instead of the trace length.
    keep_windows:
        Retain per-window :class:`WindowResult`\\ s on the returned analysis.
        Defaults to ``True`` except under the streaming backend, whose point
        is not to.
    batch_windows:
        Windows moved per backend task / prefetch slot; ``None`` picks a
        per-backend default (:func:`default_batch_windows` for the process
        backend, :data:`STREAM_BATCH_WINDOWS` for streaming).  Batching
        never changes results — only how they move.
    mode:
        Per-window analysis tier: ``"exact"`` (the fused kernel, default)
        or ``"sketch"`` (the sub-linear Count-Min/HyperLogLog tier of
        :mod:`repro.streaming.sketch` — estimated products with error
        bounds on ``result.bounds``, O(sketch) fold memory, and
        data-independent per-packet cost).
    sketch:
        Accuracy knobs for sketch mode
        (:class:`~repro.streaming.sketch.SketchConfig`); ``None`` uses
        :data:`~repro.streaming.sketch.DEFAULT_SKETCH_CONFIG`.  Rejected
        in exact mode.
    payload_transport:
        How the process backend ships window columns to its workers:
        ``"shm"`` (shared-memory segments, the default where supported) or
        ``"pickle"`` (bytes through each task).  Results are bit-identical
        either way; only valid when this call builds the backend (pass it
        to the :class:`~repro.streaming.parallel.ProcessBackend`
        constructor when supplying an instance).
    mmap:
        Memory-map stored-trace shards instead of eagerly loading them
        (uncompressed v2 ``npy`` layouts only; other layouts fall back to
        the eager read).  With the process backend, fork'd workers then
        share page cache instead of heap copies.  Ignored for in-memory
        traces.

    Returns
    -------
    WindowedAnalysis
    """
    n_valid = check_positive_int(n_valid, "n_valid")
    backend_impl = get_backend(backend, n_workers=n_workers, payload_transport=payload_transport)
    if keep_windows is None:
        keep_windows = backend_impl.name != "streaming"

    windower: ChunkedWindower | None = None
    if isinstance(trace, (str, os.PathLike, Path)):
        # the analysis never reads time/size, so skip decoding those columns
        chunks = iter_trace_chunks(trace, chunk_packets, columns=ANALYSIS_COLUMNS, mmap=mmap)
        windower = ChunkedWindower(chunks, n_valid)
        windows: Iterator[PacketTrace] = iter(windower)
    elif isinstance(trace, PacketTrace):
        if chunk_packets is not None:
            windower = ChunkedWindower(trace.iter_chunks(int(chunk_packets)), n_valid)
            windows = iter(windower)
        else:
            windows = iter_windows(trace, n_valid)
    elif isinstance(trace, Iterable):
        # re-cut the caller's chunks so chunk_packets bounds the buffer here too
        chunks = trace if chunk_packets is None else rechunk(trace, int(chunk_packets))
        windower = ChunkedWindower(chunks, n_valid)
        windows = iter(windower)
    else:
        raise TypeError(
            f"trace must be a PacketTrace, a stored-trace path, or an iterable of chunks, "
            f"got {type(trace).__name__}"
        )
    if max_windows is not None:
        windows = itertools.islice(windows, int(max_windows))

    _logger.debug("analysing windows of %d valid packets via %s backend", n_valid, backend_impl.name)
    analyzer = StreamAnalyzer(
        n_valid, quantities, keep_windows=keep_windows, mode=mode, sketch=sketch
    )
    fold_windows(
        backend_impl, windows, analyzer, batch_windows=batch_windows,
        mode=mode, sketch=analyzer.sketch_config,
    )
    stats = _engine_stats(backend_impl)
    if windower is not None:
        # read after the fold so the high-water mark covers the whole pass
        stats["max_buffered_packets"] = windower.max_buffered_packets
        stats["n_chunks"] = windower.n_chunks
    return analyzer.result(stats=stats)
