"""Shared-memory zero-copy transport for batched window payloads.

The batched process backend used to *pickle* every window's raw
``src``/``dst``/``valid`` columns into each pool task.  That is one full
copy of the analysed bytes through a pipe per map — the dominant transfer
cost once windows hold millions of packets.  This module moves the bytes
through ``multiprocessing.shared_memory`` instead:

* the **parent** concatenates the payload columns of *all* windows of one
  map into a single named shared-memory segment
  (:func:`publish_payloads`), once;
* each pool task then carries only :class:`ShmWindowRef` records — segment
  name, per-column offsets, lengths, and dtypes; a few hundred bytes per
  window regardless of window size;
* **workers** attach the segment by name (:func:`attached_payloads`) and
  build read-only NumPy views directly onto the shared pages — no copy, no
  unpickling of column data.  Under the ``fork`` start method the physical
  pages are mapped, not duplicated, so *k* workers analysing one map share
  one copy of the columns.

The views are the same bytes the pickle transport would have shipped, so
the analysis products are bit-identical between the two transports
(pinned by ``tests/test_streaming_shm.py``).

Segment lifecycle is deterministic: the creator closes **and unlinks** the
segment as soon as the map's fold completes (or fails), mirroring how the
result store prunes its orphaned temp files.  A process killed hard
(SIGKILL of a whole fleet worker, OOM) can still leak a segment past its
own ``resource_tracker``; every :func:`publish_payloads` call therefore
begins by reaping segments whose creator pid is no longer alive
(:func:`reap_orphaned_segments`) — leaks survive at most until the next
map on the machine.
"""

from __future__ import annotations

import itertools
import os
import secrets
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro._util.logging import get_logger
from repro.streaming.kernel import WindowPayload

__all__ = [
    "SEGMENT_PREFIX",
    "TRANSPORT_NAMES",
    "ColumnRef",
    "ShmWindowRef",
    "PublishedPayloads",
    "shm_supported",
    "default_payload_transport",
    "check_payload_transport",
    "publish_payloads",
    "attached_payloads",
    "reap_orphaned_segments",
]

_logger = get_logger("streaming.shm")

#: Prefix of every segment this module creates.  The creator pid is encoded
#: in the name so :func:`reap_orphaned_segments` can tell a leak (creator
#: dead) from a live map (creator alive).
SEGMENT_PREFIX = "repro_shm"

#: Payload transports the process backend understands: ``"pickle"`` ships
#: column bytes through the task pipe, ``"shm"`` ships only references into
#: a shared-memory segment.
TRANSPORT_NAMES = ("pickle", "shm")

#: Column offsets are aligned so every view starts on a clean boundary.
_ALIGN = 16

#: Where POSIX shared memory is visible as files (Linux).  Reaping needs to
#: *enumerate* segments, which the shared_memory API cannot do; on platforms
#: without this directory reaping is a silent no-op.
_SHM_DIR = "/dev/shm"

_SEGMENT_COUNTER = itertools.count()


def shm_supported() -> bool:
    """Whether ``multiprocessing.shared_memory`` works on this platform."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - all supported platforms have it
        return False
    return True


def default_payload_transport() -> str:
    """The transport the process backend uses when none is requested.

    ``"shm"`` wherever the platform supports it, ``"pickle"`` otherwise —
    both produce bit-identical analysis output.
    """
    return "shm" if shm_supported() else "pickle"


def check_payload_transport(transport: str | None) -> str:
    """Resolve/validate a ``payload_transport`` argument to a concrete name."""
    if transport is None:
        return default_payload_transport()
    if transport not in TRANSPORT_NAMES:
        raise ValueError(
            f"unknown payload_transport {transport!r}; expected one of {TRANSPORT_NAMES}"
        )
    if transport == "shm" and not shm_supported():  # pragma: no cover - platform
        raise ValueError("payload_transport='shm' is not supported on this platform")
    return transport


@dataclass(frozen=True)
class ColumnRef:
    """One column of one window inside a shared segment.

    ``offset`` is in bytes from the start of the segment, ``size`` in
    elements; ``dtype`` is the NumPy dtype string of the stored column.
    """

    offset: int
    size: int
    dtype: str


@dataclass(frozen=True)
class ShmWindowRef:
    """A :data:`~repro.streaming.kernel.WindowPayload` by reference.

    Pickles to a few hundred bytes no matter how many packets the window
    holds; resolve back to column views with :func:`attached_payloads`.
    ``valid`` is ``None`` for all-valid windows, exactly as in the direct
    payload.
    """

    segment: str
    src: ColumnRef
    dst: ColumnRef
    valid: Optional[ColumnRef] = None


def _segment_name() -> str:
    """A fresh segment name encoding the creator pid (parseable by the reaper)."""
    return (
        f"{SEGMENT_PREFIX}_{os.getpid()}_{next(_SEGMENT_COUNTER)}_{secrets.token_hex(4)}"
    )


def _creator_pid(segment_name: str) -> int | None:
    """The creator pid encoded in a segment name, or ``None`` if unparseable."""
    parts = segment_name.split("_")
    # repro_shm_<pid>_<counter>_<token>
    if len(parts) >= 5 and parts[0] == "repro" and parts[1] == "shm":
        try:
            return int(parts[2])
        except ValueError:
            return None
    return None


def _pid_alive(pid: int) -> bool:
    """Whether *pid* currently names a live process (EPERM counts as alive)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    return True


def reap_orphaned_segments() -> int:
    """Unlink leaked ``repro_shm`` segments whose creator process is dead.

    The normal lifecycle never needs this — the creator unlinks its segment
    in the same ``finally`` that ends the map — but a SIGKILLed process
    (fleet worker takeover, OOM) dies before its ``finally`` *and* takes its
    ``resource_tracker`` with it when the whole process group is killed.
    Called at the start of every :func:`publish_payloads`, so a leaked
    segment survives at most until the next shared-memory map on the
    machine; returns the number of segments reaped.
    """
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux platforms
        return 0
    reaped = 0
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:  # pragma: no cover - defensive
        return 0
    for name in names:
        if not name.startswith(SEGMENT_PREFIX + "_"):
            continue
        pid = _creator_pid(name)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
        except OSError:  # pragma: no cover - raced another reaper
            continue
        reaped += 1
        _logger.info("reaped orphaned shared-memory segment %s (creator pid %d is dead)", name, pid)
    return reaped


class PublishedPayloads:
    """Creator-side handle of one published payload set.

    Holds the shared-memory segment open for the duration of the map and
    owns its destruction: :meth:`close` (idempotent) closes the mapping and
    unlinks the name, after which workers can no longer attach.  ``refs``
    are the picklable per-window references to ship instead of the columns.
    """

    def __init__(self, shm, refs: Tuple[ShmWindowRef, ...]) -> None:
        self._shm = shm
        self.refs = refs
        self._segment = shm.name
        self._nbytes = shm.size

    @property
    def segment(self) -> str:
        """Name of the underlying shared-memory segment (stable across close)."""
        return self._segment

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self._nbytes

    def close(self) -> None:
        """Close the mapping and unlink the segment (idempotent)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced the reaper
            pass

    def __enter__(self) -> "PublishedPayloads":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - backstop, not the API
        self.close()


def _append_column(buffer: memoryview, cursor: int, column: np.ndarray) -> Tuple[ColumnRef, int]:
    """Copy one column into the segment at the next aligned offset."""
    offset = -(-cursor // _ALIGN) * _ALIGN
    end = offset + column.nbytes
    view = np.ndarray(column.shape, dtype=column.dtype, buffer=buffer, offset=offset)
    view[...] = column
    return ColumnRef(offset=offset, size=int(column.size), dtype=column.dtype.str), end


def publish_payloads(payloads: Sequence[WindowPayload]) -> PublishedPayloads:
    """Publish window payload columns into one shared-memory segment.

    Concatenates every window's ``src``/``dst`` (and ``valid`` where
    present) columns into a freshly created segment and returns the handle
    plus one :class:`ShmWindowRef` per window, in order.  The caller owns
    the handle and must :meth:`~PublishedPayloads.close` it when the fold
    is done — use it as a context manager.  Orphaned segments from dead
    processes are reaped first.
    """
    from multiprocessing import shared_memory

    reap_orphaned_segments()
    total = 0
    for src, dst, valid in payloads:
        total = -(-total // _ALIGN) * _ALIGN + src.nbytes
        total = -(-total // _ALIGN) * _ALIGN + dst.nbytes
        if valid is not None:
            total = -(-total // _ALIGN) * _ALIGN + valid.nbytes
    # SharedMemory rejects size 0; an all-empty map still needs a segment
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1), name=_segment_name())
    try:
        buffer = shm.buf
        cursor = 0
        refs = []
        for src, dst, valid in payloads:
            src_ref, cursor = _append_column(buffer, cursor, src)
            dst_ref, cursor = _append_column(buffer, cursor, dst)
            valid_ref = None
            if valid is not None:
                valid_ref, cursor = _append_column(buffer, cursor, valid)
            refs.append(ShmWindowRef(segment=shm.name, src=src_ref, dst=dst_ref, valid=valid_ref))
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    _logger.debug(
        "published %d window payloads (%d bytes) into segment %s",
        len(refs), total, shm.name,
    )
    return PublishedPayloads(shm, tuple(refs))


def _attach_segment(name: str):
    """Attach an existing segment by name without resource-tracker tracking.

    Before Python 3.13 every attach *registers* the segment with the
    process's ``resource_tracker``, which then unlinks it when the attaching
    process exits — destroying a segment the creator still owns (bpo-38119).
    Attaches must therefore not be tracked at all: the creator alone decides
    when the segment dies.  (Suppressing registration is strictly better
    than register-then-unregister: fork'd workers share the parent's tracker
    process, whose name cache is a *set*, so a worker's unregister would
    also erase the creator's own registration and its later ``unlink`` would
    trip a tracker ``KeyError``.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register

        def _skip_shm_register(rname, rtype):  # pragma: no cover - trivial shim
            if rtype != "shared_memory":
                original_register(rname, rtype)

        resource_tracker.register = _skip_shm_register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def _column_view(buffer: memoryview, ref: ColumnRef) -> np.ndarray:
    """A read-only NumPy view of one column inside an attached segment."""
    view = np.ndarray((ref.size,), dtype=np.dtype(ref.dtype), buffer=buffer, offset=ref.offset)
    view.flags.writeable = False
    return view


@contextmanager
def attached_payloads() -> Iterator:
    """Attach segments on demand and resolve references to payload views.

    Yields a resolver: calling it with one :class:`ShmWindowRef` returns the
    read-only :data:`~repro.streaming.kernel.WindowPayload` view of that
    window, attaching each distinct segment the first time it is named.  All
    attachments are detached on exit, so resolved views must not outlive the
    ``with`` block — the analysis products computed from them (aggregates,
    histograms, pooled vectors) are fresh arrays and safely do.
    """
    segments: dict = {}

    def resolve(ref: ShmWindowRef) -> WindowPayload:
        shm = segments.get(ref.segment)
        if shm is None:
            shm = segments[ref.segment] = _attach_segment(ref.segment)
        buffer = shm.buf
        return (
            _column_view(buffer, ref.src),
            _column_view(buffer, ref.dst),
            _column_view(buffer, ref.valid) if ref.valid is not None else None,
        )

    try:
        yield resolve
    finally:
        for shm in segments.values():
            try:
                shm.close()
            except BufferError:  # pragma: no cover - a view outlived the block
                _logger.debug("segment %s still has live views; deferring close to GC", shm.name)
