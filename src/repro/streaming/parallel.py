"""Pluggable execution backends for the window-analysis map.

The paper's measurements were produced on an interactive supercomputer with
sparse-matrix parallelism; the laptop-scale equivalent here is a family of
execution strategies behind one :class:`ExecutionBackend` protocol.  Windows
are independent by construction (each aggregates a disjoint slice of
packets), so the map is embarrassingly parallel and the substrate can be
swapped beneath a stable analysis API:

* :class:`SerialBackend` — in-process, lazy, deterministic; the default and
  the debugging baseline.
* :class:`ProcessBackend` — a warm, process-wide ``multiprocessing`` pool
  driven through ``imap`` so results stream back in window order as they
  complete instead of barriering behind a single ``map`` call.  Items are
  whatever the caller maps — the single-pass engine maps *batches* of
  window payloads, so one task carries many windows — and the ``imap``
  chunksize is derived from the item (batch) count
  (:func:`default_chunksize`).  The pool outlives individual maps
  (:func:`shared_pool`), so repeated analyses stop paying worker start-up.
* :class:`StreamingBackend` — bounded-memory single-pass execution that
  overlaps window production (I/O, decompression, windowing) with analysis
  through a fixed-depth prefetch queue fed by a background thread; at most
  ``prefetch`` items (windows, or window batches when the engine batches)
  exist in the queue at any moment.

All three yield results **in window order**, which is what lets the
incremental consumer (:class:`repro.streaming.pipeline.StreamAnalyzer`) fold
them into bit-identical pooled aggregates regardless of backend.

The legacy entry point :func:`map_windows` is kept as a list-returning
wrapper over the serial/process backends.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue
import threading
from typing import Callable, Iterable, Iterator, List, Protocol, Sequence, TypeVar, Union, runtime_checkable

from repro._util.logging import get_logger
from repro._util.validation import check_positive_int

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessBackend",
    "StreamingBackend",
    "BACKEND_NAMES",
    "get_backend",
    "map_windows",
    "usable_cpu_count",
    "default_worker_count",
    "default_chunksize",
    "shared_pool",
    "shutdown_shared_pools",
]

_T = TypeVar("_T")
_R = TypeVar("_R")
_logger = get_logger("streaming.parallel")

#: Names accepted by :func:`get_backend` (and the CLI ``--backend`` flag).
BACKEND_NAMES = ("serial", "process", "streaming")


def usable_cpu_count() -> int:
    """CPUs this process may actually run on.

    Respects the scheduler affinity mask (container / cgroup CPU limits)
    where the platform exposes it, falling back to the raw CPU count.  This
    is the honest parallelism budget: spawning workers beyond it turns the
    process backend into pure overhead.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def default_worker_count(*, reserve: int = 2, maximum: int = 16) -> int:
    """A sensible worker count: usable CPUs minus a *scaled* reserve, capped.

    The reserve (head-room for the parent process and the OS) is scaled to
    the machine: it only applies in full once at least ``reserve + 2`` CPUs
    are usable.  A flat ``cpus - reserve`` silently downgraded 2–3-CPU boxes
    to one worker — and therefore to serial execution — even though parallel
    hardware existed; now 2 and 3 usable CPUs yield 2 workers (reserve 0
    and 1 respectively), and only a true 1-CPU budget degrades to 1, which
    :meth:`ProcessBackend.map` treats as serial in-process execution — the
    right call when there is no parallel hardware to occupy.
    """
    cpus = usable_cpu_count()
    scaled_reserve = min(reserve, max(0, cpus - 2))
    return max(1, min(cpus - scaled_reserve, maximum))


def default_chunksize(n_items: int, n_workers: int) -> int:
    """Items handed to a worker per ``imap`` task: ``max(1, n // (4·workers))``.

    Four tasks per worker amortises dispatch overhead while still letting
    the pool balance uneven costs.  The engine maps *batches* of windows,
    so ``n_items`` is the batch count and the heuristic no longer
    over-chunks small workloads: a batched workload sized to ~4 tasks per
    worker resolves to chunksize 1, i.e. the batch itself is the unit of
    work-stealing.
    """
    if n_workers <= 0:
        raise ValueError("n_workers must be >= 1")
    return max(1, n_items // (4 * n_workers))


# -- warm shared pools --------------------------------------------------------

_POOLS: dict = {}
_POOLS_LOCK = threading.Lock()
_POOLS_ATEXIT_REGISTERED = False


def _start_method() -> str:
    # prefer fork where available: it avoids re-importing the scientific
    # stack in every worker, which dominates for second-scale workloads
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


class _PoolEntry:
    """One cached pool generation plus its in-flight map bookkeeping.

    The entry *is* the generation tag: a failed map retires its entry (so
    new maps start a fresh pool) but the pool itself is only terminated once
    the last in-flight map checks in.  Without this, one failed map would
    terminate a pool that a concurrent map — a daemon job and a campaign
    worker sharing the process, or two threads of one service — was still
    iterating, poisoning an innocent caller's results.
    """

    __slots__ = ("key", "pool", "active", "retired")

    def __init__(self, key, pool) -> None:
        self.key = key
        self.pool = pool
        self.active = 0  # maps currently iterating this pool
        self.retired = False  # no new maps; terminate when active hits 0


def _current_entry(n_workers: int) -> _PoolEntry:
    """The live cache entry for *n_workers*, creating pool + entry on demand."""
    global _POOLS_ATEXIT_REGISTERED
    n_workers = check_positive_int(n_workers, "n_workers")
    key = (_start_method(), n_workers)
    with _POOLS_LOCK:
        entry = _POOLS.get(key)
        if entry is None:
            _logger.debug("starting shared %s pool with %d workers", *key)
            pool = multiprocessing.get_context(key[0]).Pool(processes=n_workers)
            entry = _POOLS[key] = _PoolEntry(key, pool)
            if not _POOLS_ATEXIT_REGISTERED:
                atexit.register(shutdown_shared_pools)
                _POOLS_ATEXIT_REGISTERED = True
    return entry


def shared_pool(n_workers: int):
    """The process-wide worker pool for *n_workers*, started on first use.

    Pools are cached per worker count and reused across maps, so a campaign
    of many analyses pays worker start-up once instead of per call.  All
    cached pools are terminated at interpreter exit (or explicitly via
    :func:`shutdown_shared_pools`).
    """
    return _current_entry(n_workers).pool


def _checkout_shared_pool(n_workers: int) -> _PoolEntry:
    """Claim the current pool generation for one map (pairs with checkin)."""
    while True:
        entry = _current_entry(n_workers)
        with _POOLS_LOCK:
            if not entry.retired:  # else: raced a retire; take a fresh pool
                entry.active += 1
                return entry


def _checkin_shared_pool(entry: _PoolEntry, *, failed: bool) -> None:
    """Release one map's claim; a failed map retires its pool generation.

    Retiring removes the entry from the cache (new maps start a clean pool)
    but defers termination until every in-flight map on the same generation
    has checked in — concurrent maps on a shared pool must never have their
    workers killed by a neighbour's failure.
    """
    with _POOLS_LOCK:
        entry.active -= 1
        if failed and not entry.retired:
            entry.retired = True
            if _POOLS.get(entry.key) is entry:
                del _POOLS[entry.key]
        terminate = entry.retired and entry.active == 0
    if terminate:
        entry.pool.terminate()
        entry.pool.join()


def shutdown_shared_pools() -> None:
    """Retire every cached shared pool (idempotent; re-use restarts them).

    Pools with no map in flight are terminated immediately; a pool still
    being iterated is terminated by the last map's checkin instead, so a
    shutdown cannot poison concurrent results.
    """
    with _POOLS_LOCK:
        entries = list(_POOLS.values())
        _POOLS.clear()
        to_terminate = []
        for entry in entries:
            entry.retired = True
            if entry.active == 0:
                to_terminate.append(entry)
    for entry in to_terminate:
        entry.pool.terminate()
        entry.pool.join()


@runtime_checkable
class ExecutionBackend(Protocol):
    """Strategy protocol for applying an analysis function to a window stream.

    Implementations expose a ``name`` (one of :data:`BACKEND_NAMES` for the
    built-ins) and a :meth:`map` that applies *func* to every item of
    *items*, yielding results **in input order**.  ``map`` must be safe to
    consume lazily; whether the input iterable is materialized is a backend
    property (the streaming backend never does).
    """

    name: str

    def map(self, func: Callable[[_T], _R], items: Iterable[_T]) -> Iterator[_R]:
        """Apply *func* to every item, yielding results in input order."""
        ...


class SerialBackend:
    """In-process lazy execution — one window at a time, no buffering."""

    name = "serial"

    def map(self, func: Callable[[_T], _R], items: Iterable[_T]) -> Iterator[_R]:
        """Apply *func* item-by-item as the result iterator is consumed."""
        return (func(item) for item in items)


class ProcessBackend:
    """Worker-pool execution streaming results back through ``imap``.

    The input iterable is materialized (the pool needs to pickle tasks out
    ahead of results coming back), so memory is O(items); use
    :class:`StreamingBackend` when the trace does not fit.  Results still
    stream back one task at a time, so downstream folding overlaps with
    worker compute instead of waiting on a ``pool.map`` barrier.

    Maps run on the warm :func:`shared_pool` for the backend's worker
    count: the workers persist across calls, so only the first map pays
    pool start-up.  A map that raises retires its pool generation (worker
    state is no longer trusted): the next map starts a fresh pool, while
    concurrent maps still iterating the retired pool finish unharmed.
    """

    name = "process"

    def __init__(
        self,
        n_workers: int | None = None,
        *,
        chunksize: int | None = None,
        payload_transport: str | None = None,
    ) -> None:
        from repro.streaming.shm import check_payload_transport

        self.n_workers = default_worker_count() if n_workers is None else check_positive_int(n_workers, "n_workers")
        self.chunksize = None if chunksize is None else check_positive_int(chunksize, "chunksize")
        #: How the batched payload path ships window columns to workers:
        #: ``"shm"`` (shared-memory segments, zero-copy, the default where
        #: supported) or ``"pickle"`` (column bytes through the task pipe).
        #: Bit-identical output either way.
        self.payload_transport = check_payload_transport(payload_transport)

    def effective_workers(self, n_items: int) -> int:
        """Workers a map over *n_items* would actually occupy (1 = serial)."""
        return max(0, min(self.n_workers, n_items))

    def downgraded(self, n_items: int) -> bool:
        """Whether a map over *n_items* degrades to serial execution.

        The one place the downgrade decision is made and logged — both
        :meth:`map` and the engine's batched payload path consult it, so
        the policy and its log line cannot drift apart.
        """
        if self.effective_workers(n_items) > 1:
            return False
        if self.n_workers > 1 and n_items:
            _logger.info(
                "downgrading to serial execution: %d task(s) cannot occupy %d workers",
                n_items, self.n_workers,
            )
        return True

    def map(self, func: Callable[[_T], _R], items: Iterable[_T]) -> Iterator[_R]:
        """Apply *func* across the pool, yielding results in input order."""
        item_list: Sequence[_T] = items if isinstance(items, Sequence) else list(items)
        if not item_list:
            return iter(())
        if self.downgraded(len(item_list)):
            return SerialBackend().map(func, item_list)
        n_workers = self.effective_workers(len(item_list))
        chunksize = self.chunksize or default_chunksize(len(item_list), n_workers)
        _logger.debug(
            "mapping %d tasks across %d workers (chunksize %d)", len(item_list), n_workers, chunksize
        )
        return self._imap(func, item_list, n_workers, chunksize)

    @staticmethod
    def _imap(func, item_list, n_workers, chunksize) -> Iterator:
        entry = _checkout_shared_pool(n_workers)
        failed = False
        try:
            yield from entry.pool.imap(func, item_list, chunksize=chunksize)
        except GeneratorExit:
            # the consumer abandoned the iteration — no worker failed; the
            # pool is healthy and in-flight tasks simply drain in the
            # background, so keep it warm
            raise
        except BaseException:
            # a failed map leaves in-flight tasks of unknown state behind;
            # retire this pool generation so the next map starts clean —
            # concurrent maps already iterating it finish first (checkin
            # terminates only once the last one releases its claim)
            failed = True
            raise
        finally:
            _checkin_shared_pool(entry, failed=failed)


#: How long a map teardown waits for the prefetch producer thread to exit
#: before logging that it is still alive (it cannot be killed; an input
#: iterator blocked in I/O pins it until that read returns).
_PRODUCER_JOIN_TIMEOUT = 5.0


class _PrefetchFailure:
    """Carries a producer-side exception across the prefetch queue."""

    def __init__(self, error: BaseException) -> None:
        self.error = error


class StreamingBackend:
    """Bounded-memory execution overlapping window production with analysis.

    A daemon thread pulls windows from the input iterator into a queue of
    fixed depth *prefetch* while the consuming thread applies *func*; the
    queue back-pressures the producer, so at most ``prefetch + 1`` windows
    are alive at any moment no matter how long the trace is.  Producer
    exceptions are re-raised at the consumption point; if the consumer
    raises or abandons the result iterator, the producer is signalled to
    stop so no thread (or buffered window) outlives the map.
    """

    name = "streaming"

    def __init__(self, *, prefetch: int = 4) -> None:
        self.prefetch = check_positive_int(prefetch, "prefetch")

    def map(self, func: Callable[[_T], _R], items: Iterable[_T]) -> Iterator[_R]:
        """Apply *func* to the stream with a fixed-depth prefetch buffer."""
        return self._consume(func, iter(items))

    def _consume(self, func, items) -> Iterator:
        fence = queue.Queue(maxsize=self.prefetch)
        done = object()
        stop = threading.Event()

        def put(obj) -> bool:
            # bounded put that gives up when the consumer has gone away,
            # so an abandoned map never leaves a thread blocked on a full queue
            while not stop.is_set():
                try:
                    fence.put(obj, timeout=0.05)
                    return True
                except queue.Full:
                    continue
            return False

        def produce() -> None:
            try:
                for item in items:
                    if not put(item):
                        return
            except BaseException as error:  # noqa: BLE001 - forwarded to consumer
                if not put(_PrefetchFailure(error)):
                    # the consumer is gone and will never observe this error;
                    # a silent drop would bury a real producer failure
                    _logger.warning(
                        "streaming producer error dropped after the consumer "
                        "abandoned the map: %r", error,
                    )
            else:
                put(done)

        producer = threading.Thread(target=produce, name="repro-prefetch", daemon=True)
        producer.start()
        try:
            while True:
                item = fence.get()
                if item is done:
                    break
                if isinstance(item, _PrefetchFailure):
                    raise item.error
                yield func(item)
        finally:
            stop.set()
            # drain the queue so a producer blocked on a full slot wakes on
            # its very next put attempt instead of waiting out put timeouts
            while True:
                try:
                    fence.get_nowait()
                except queue.Empty:
                    break
            producer.join(timeout=_PRODUCER_JOIN_TIMEOUT)
            if producer.is_alive():
                # honest deadline: say so when the thread outlives the map
                # (an input iterator blocked in I/O can pin it) instead of
                # silently pretending the join succeeded
                _logger.warning(
                    "streaming producer thread still alive %.1fs after map "
                    "teardown; the input iterator appears blocked",
                    _PRODUCER_JOIN_TIMEOUT,
                )


def get_backend(
    backend: Union[str, ExecutionBackend, None] = None,
    *,
    n_workers: int | None = None,
    chunksize: int | None = None,
    prefetch: int = 4,
    payload_transport: str | None = None,
) -> ExecutionBackend:
    """Resolve a backend specification to an :class:`ExecutionBackend`.

    *backend* may be a name from :data:`BACKEND_NAMES`, an already-built
    backend instance (returned as-is), or ``None`` — which preserves the
    historical behaviour of the ``n_workers`` argument: serial unless
    ``n_workers > 1``, then a process pool.  With ``backend="process"`` an
    explicit *n_workers* is honoured exactly (``1`` degrades to serial
    execution, logged); ``None`` picks :func:`default_worker_count`.
    *payload_transport* selects how the process backend ships window
    columns (:data:`repro.streaming.shm.TRANSPORT_NAMES`); requesting it
    for a backend that ships no payloads is an error, not a silent no-op.
    """
    if backend is None:
        if n_workers is not None and n_workers > 1:
            return ProcessBackend(n_workers, chunksize=chunksize, payload_transport=payload_transport)
        backend = "serial"
    if isinstance(backend, str):
        if backend == "process":
            return ProcessBackend(n_workers, chunksize=chunksize, payload_transport=payload_transport)
        if payload_transport is not None:
            raise ValueError(
                f"payload_transport={payload_transport!r} only applies to the process "
                f"backend, not {backend!r}"
            )
        if backend == "serial":
            return SerialBackend()
        if backend == "streaming":
            return StreamingBackend(prefetch=prefetch)
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}")
    if isinstance(backend, ExecutionBackend):
        if payload_transport is not None:
            raise ValueError(
                "payload_transport cannot be combined with an already-built backend "
                "instance; pass it to the ProcessBackend constructor instead"
            )
        return backend
    raise TypeError(f"backend must be a name, ExecutionBackend, or None, got {type(backend).__name__}")


def map_windows(
    func: Callable[[_T], _R],
    windows: Iterable[_T],
    *,
    n_workers: int = 1,
    chunksize: int | None = None,
) -> List[_R]:
    """Apply *func* to every window, optionally across worker processes.

    Parameters
    ----------
    func:
        Analysis callable taking one window.  For multi-process execution it
        must be picklable (a module-level function or
        :func:`functools.partial` thereof).
    windows:
        Iterable of windows (e.g. :func:`repro.streaming.window.iter_windows`).
    n_workers:
        Number of worker processes; ``<= 1`` runs serially in-process.
    chunksize:
        Windows handed to a worker per task when running in parallel; by
        default derived from the workload via :func:`default_chunksize`.

    Returns
    -------
    list
        One result per window, in window order.
    """
    window_list = list(windows)
    if not window_list:
        return []
    if n_workers <= 1:
        return [func(w) for w in window_list]
    return list(ProcessBackend(n_workers, chunksize=chunksize).map(func, window_list))
