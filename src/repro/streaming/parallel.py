"""Process-level parallelism over traffic windows.

The paper's measurements were produced on an interactive supercomputer with
sparse-matrix parallelism; the laptop-scale equivalent here is a
``multiprocessing`` pool mapping an analysis function over the windows of a
trace.  Windows are independent by construction (each aggregates a disjoint
slice of packets), so the map is embarrassingly parallel; results are
returned in window order regardless of completion order.

The public entry point :func:`map_windows` degrades gracefully: with
``n_workers <= 1`` (the default) it runs serially in-process, which keeps
debugging and test runs deterministic and avoids pool start-up overhead for
small workloads.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, Sequence, TypeVar

from repro._util.logging import get_logger
from repro.streaming.packet import PacketTrace

__all__ = ["map_windows", "default_worker_count"]

_T = TypeVar("_T")
_logger = get_logger("streaming.parallel")


def default_worker_count(*, reserve: int = 2, maximum: int = 16) -> int:
    """A sensible worker count: CPU count minus *reserve*, capped at *maximum*."""
    cpus = os.cpu_count() or 1
    return max(1, min(cpus - reserve, maximum))


def map_windows(
    func: Callable[[PacketTrace], _T],
    windows: Iterable[PacketTrace],
    *,
    n_workers: int = 1,
    chunksize: int = 1,
) -> List[_T]:
    """Apply *func* to every window, optionally across worker processes.

    Parameters
    ----------
    func:
        Analysis callable taking one :class:`PacketTrace` window.  For
        multi-process execution it must be picklable (a module-level function
        or :func:`functools.partial` thereof).
    windows:
        Iterable of windows (e.g. :func:`repro.streaming.window.iter_windows`).
    n_workers:
        Number of worker processes; ``<= 1`` runs serially in-process.
    chunksize:
        Windows handed to a worker per task when running in parallel.

    Returns
    -------
    list
        One result per window, in window order.
    """
    window_list: Sequence[PacketTrace] = list(windows)
    if not window_list:
        return []
    if n_workers <= 1 or len(window_list) == 1:
        return [func(w) for w in window_list]
    n_workers = min(n_workers, len(window_list))
    _logger.debug("mapping %d windows across %d workers", len(window_list), n_workers)
    # prefer fork where available: it avoids re-importing the scientific stack
    # in every worker, which dominates the run time for second-scale workloads
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    ctx = multiprocessing.get_context(method)
    with ctx.Pool(processes=n_workers) as pool:
        return pool.map(func, window_list, chunksize=max(1, chunksize))
