"""The sparse traffic image ``A_t`` (Section II, Table I).

At a given time ``t``, the ``N_V`` valid packets of one window are
aggregated into a sparse matrix ``A_t`` where ``A_t(i, j)`` is the number of
valid packets from source ``i`` to destination ``j``.  The sum of all the
entries of ``A_t`` is therefore ``N_V``.

:class:`TrafficImage` wraps the matrix in CSR form together with the
source/destination id maps (endpoint identifiers are arbitrary integers, so
rows and columns are indexed by compacted local ids).  Everything downstream
— the Table-I aggregates and the Figure-1 quantities — is computed from this
object with sparse matrix/vector operations, mirroring the paper's
D4M-style matrix formulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.streaming.packet import PacketTrace

__all__ = ["TrafficImage", "traffic_image"]


@dataclass(frozen=True)
class TrafficImage:
    """One window's sparse source×destination packet-count matrix.

    Attributes
    ----------
    matrix:
        CSR matrix of shape ``(n_sources, n_destinations)`` whose ``(i, j)``
        entry is the number of valid packets from the ``i``-th distinct
        source to the ``j``-th distinct destination of the window.
    source_ids:
        Original endpoint identifier of each matrix row.
    destination_ids:
        Original endpoint identifier of each matrix column.
    """

    matrix: sparse.csr_matrix
    source_ids: np.ndarray
    destination_ids: np.ndarray

    def __post_init__(self) -> None:
        if self.matrix.shape[0] != self.source_ids.size:
            raise ValueError("matrix row count must match source_ids length")
        if self.matrix.shape[1] != self.destination_ids.size:
            raise ValueError("matrix column count must match destination_ids length")

    @property
    def n_valid(self) -> int:
        """Total number of valid packets ``Σ_{ij} A_t(i, j) = N_V``."""
        return int(self.matrix.sum())

    @property
    def n_sources(self) -> int:
        """Number of distinct sources."""
        return int(self.matrix.shape[0])

    @property
    def n_destinations(self) -> int:
        """Number of distinct destinations."""
        return int(self.matrix.shape[1])

    @property
    def n_links(self) -> int:
        """Number of distinct source–destination pairs (non-zeros of ``A_t``)."""
        return int(self.matrix.nnz)

    def to_dense(self) -> np.ndarray:
        """Dense copy of the matrix (small windows / tests only)."""
        return np.asarray(self.matrix.todense())

    def undirected_edges(self) -> np.ndarray:
        """Distinct links as an ``(m, 2)`` array of original endpoint ids.

        The pair is returned as (source id, destination id); callers building
        an undirected observed network should canonicalise and deduplicate.
        """
        coo = self.matrix.tocoo()
        return np.column_stack(
            [self.source_ids[coo.row], self.destination_ids[coo.col]]
        ).astype(np.int64)


def traffic_image(window: PacketTrace) -> TrafficImage:
    """Aggregate a window of packets into the sparse image ``A_t``.

    Only valid packets contribute.  Row/column order follows the sorted
    distinct source/destination identifiers of the window.
    """
    valid = window.packets[window.packets["valid"]]
    if valid.size == 0:
        # early exit: no ids to compact, and the (0, 0) shape must stay
        # consistent with the (empty) id arrays
        return TrafficImage(
            matrix=sparse.csr_matrix((0, 0), dtype=np.int64),
            source_ids=np.zeros(0, dtype=np.int64),
            destination_ids=np.zeros(0, dtype=np.int64),
        )
    src = valid["src"]
    dst = valid["dst"]
    source_ids, src_idx = np.unique(src, return_inverse=True)
    destination_ids, dst_idx = np.unique(dst, return_inverse=True)
    data = np.ones(valid.size, dtype=np.int64)
    matrix = sparse.coo_matrix(
        (data, (src_idx, dst_idx)), shape=(source_ids.size, destination_ids.size)
    ).tocsr()
    matrix.sum_duplicates()
    return TrafficImage(matrix=matrix, source_ids=source_ids, destination_ids=destination_ids)
