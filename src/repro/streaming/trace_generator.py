"""Synthetic packet-trace generation.

The paper's data are trunk-line captures from the MAWI/WIDE and CAIDA
observatories; those traces are not redistributable, so the reproduction
replays synthetic traffic from a generative underlying network instead (see
DESIGN.md for the substitution argument).  The generator works in two steps:

1. every underlying edge (source–destination pair) receives a *rate weight*
   drawn from a heavy-tailed law — heavier-tailed weights concentrate more
   of the stream on a few links, reproducing the ``link packets``
   distribution of Figure 3;
2. packets are drawn i.i.d. from the edge set with probability proportional
   to the weights, given monotone timestamps, and optionally mixed with a
   fraction of invalid packets.

Because packets land on edges independently, observing a window of ``N_V``
consecutive packets is (conditionally on the weights) equivalent to
Bernoulli edge sampling of the underlying network — precisely the paper's
observation model, with the window length controlling the effective ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import networkx as nx
import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_fraction, check_positive, check_positive_int
from repro.generators.palu_graph import PALUGraph
from repro.streaming.packet import PacketTrace

__all__ = [
    "TraceConfig",
    "generate_trace",
    "generate_trace_from_graph",
    "edge_rate_weights",
    "effective_window_p",
]

GraphLike = Union[nx.Graph, PALUGraph, np.ndarray]


@dataclass(frozen=True)
class TraceConfig:
    """Configuration of the synthetic traffic generator.

    Attributes
    ----------
    n_packets:
        Total number of packets to emit (valid + invalid).
    rate_model:
        Distribution of per-edge rate weights: ``"uniform"`` (every edge
        equally likely), ``"zipf"`` (weights ∝ rank^{-rate_exponent} after a
        random edge permutation), or ``"lognormal"``.
    rate_exponent:
        Exponent of the ``"zipf"`` rate model (ignored otherwise).
    lognormal_sigma:
        Shape of the ``"lognormal"`` rate model (ignored otherwise).
    invalid_fraction:
        Fraction of emitted packets flagged invalid (exercises the
        valid-packet windowing logic; the endpoints of invalid packets are
        drawn uniformly from the node range).
    mean_interarrival:
        Mean spacing of the exponential inter-arrival times (seconds).
    directed:
        Emit each packet in a uniformly random direction over the edge
        (default) or always from the lower to the higher node id.
    """

    n_packets: int
    rate_model: str = "uniform"
    rate_exponent: float = 1.2
    lognormal_sigma: float = 1.5
    invalid_fraction: float = 0.0
    mean_interarrival: float = 1e-4
    directed: bool = True

    def __post_init__(self) -> None:
        check_positive_int(self.n_packets, "n_packets")
        if self.rate_model not in ("uniform", "zipf", "lognormal"):
            raise ValueError(
                f"unknown rate_model {self.rate_model!r}; expected 'uniform', 'zipf', or 'lognormal'"
            )
        check_positive(self.rate_exponent, "rate_exponent")
        check_positive(self.lognormal_sigma, "lognormal_sigma")
        check_fraction(self.invalid_fraction, "invalid_fraction")
        check_positive(self.mean_interarrival, "mean_interarrival")


def _edges_of(graph: GraphLike) -> np.ndarray:
    if isinstance(graph, PALUGraph):
        return graph.edges_array()
    if isinstance(graph, nx.Graph):
        if graph.number_of_edges() == 0:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(list(graph.edges()), dtype=np.int64)
    edges = np.asarray(graph, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array of node pairs")
    return edges


def edge_rate_weights(n_edges: int, config: TraceConfig, gen: np.random.Generator) -> np.ndarray:
    """Normalised per-edge rate weights under *config*'s rate model.

    One draw per (graph, config) pair — the paper's stationarity assumption
    in miniature: packets are i.i.d. given these weights.  The scenario
    subsystem (:mod:`repro.scenarios`) re-draws them per *phase*, which is
    exactly how it breaks stationarity while reusing this generator.
    """
    if config.rate_model == "uniform":
        return np.full(n_edges, 1.0 / n_edges)
    if config.rate_model == "zipf":
        ranks = gen.permutation(n_edges) + 1.0
        weights = ranks ** (-config.rate_exponent)
    else:  # lognormal
        weights = gen.lognormal(mean=0.0, sigma=config.lognormal_sigma, size=n_edges)
    total = weights.sum()
    if total <= 0:
        raise RuntimeError("edge rate weights summed to zero")
    return weights / total


def generate_trace_from_graph(
    graph: GraphLike,
    config: TraceConfig,
    *,
    rng: RNGLike = None,
) -> PacketTrace:
    """Emit a synthetic packet trace over the edges of *graph*.

    See :class:`TraceConfig` for the generation knobs.  The returned trace is
    time-ordered with exponential inter-arrival times.
    """
    edges = _edges_of(graph)
    if edges.shape[0] == 0:
        raise ValueError("cannot generate traffic over a graph with no edges")
    gen = as_generator(rng)
    n = config.n_packets

    weights = edge_rate_weights(edges.shape[0], config, gen)
    chosen = gen.choice(edges.shape[0], size=n, replace=True, p=weights)
    src = edges[chosen, 0].copy()
    dst = edges[chosen, 1].copy()
    if config.directed:
        flip = gen.random(n) < 0.5
        src[flip], dst[flip] = dst[flip], src[flip].copy()

    valid = np.ones(n, dtype=bool)
    if config.invalid_fraction > 0:
        invalid = gen.random(n) < config.invalid_fraction
        valid[invalid] = False
        # invalid packets get arbitrary endpoints outside the traffic pattern
        n_nodes = int(edges.max()) + 1
        src[invalid] = gen.integers(0, n_nodes, size=int(invalid.sum()))
        dst[invalid] = gen.integers(0, n_nodes, size=int(invalid.sum()))

    times = np.cumsum(gen.exponential(config.mean_interarrival, size=n))
    sizes = gen.integers(64, 1500, size=n, dtype=np.int32)
    return PacketTrace.from_arrays(src, dst, time=times, size=sizes, valid=valid)


def generate_trace(
    graph: GraphLike,
    n_packets: int,
    *,
    rate_model: str = "uniform",
    rate_exponent: float = 1.2,
    invalid_fraction: float = 0.0,
    rng: RNGLike = None,
    seed: RNGLike = None,
) -> PacketTrace:
    """Convenience wrapper around :func:`generate_trace_from_graph`.

    Parameters mirror the most commonly used :class:`TraceConfig` fields.
    """
    if seed is not None and rng is None:
        rng = seed
    config = TraceConfig(
        n_packets=n_packets,
        rate_model=rate_model,
        rate_exponent=rate_exponent,
        invalid_fraction=invalid_fraction,
    )
    return generate_trace_from_graph(graph, config, rng=rng)


def effective_window_p(graph: GraphLike, n_valid: int, *, rate_model: str = "uniform") -> float:
    """Approximate edge-sampling probability ``p`` induced by a window.

    For the uniform rate model, a window of ``N_V`` valid packets over ``m``
    underlying edges sees each edge with probability
    ``p = 1 − (1 − 1/m)^{N_V} ≈ 1 − exp(−N_V/m)``.  Heavy-tailed rate models
    concentrate packets, so the same window observes *fewer* distinct edges;
    the uniform value is still the right scale for choosing ``N_V`` in the
    experiments and is exact for the default generator configuration.
    """
    edges = _edges_of(graph)
    m = edges.shape[0]
    if m == 0:
        return 0.0
    n_valid = check_positive_int(n_valid, "n_valid")
    if rate_model != "uniform":
        raise ValueError("effective_window_p currently supports only the uniform rate model")
    return float(-np.expm1(-n_valid / m))
