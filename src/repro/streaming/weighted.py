"""Weighted (byte-count) traffic quantities — the paper's weighted-edge extension.

The paper studies the *unweighted* model and lists weighted edges as future
work: "the common weights to study subsequently could be the number of
packets or number of bytes sent over a link" (Section II).  Packet counts are
already what :mod:`repro.streaming.aggregates` measures; this module adds the
byte-weighted view so that extension can be explored:

* :func:`byte_image` — the byte-weighted analogue of the traffic image
  ``B_t(i, j) = total bytes from source i to destination j``,
* :func:`weighted_quantities` — byte-weighted versions of the Figure-1
  quantities (source bytes, link bytes, destination bytes), and
* :func:`byte_histograms` — histograms of those quantities after bucketing
  bytes into kilobyte units so the binary-log pooling machinery applies
  unchanged.

The same pooling/fitting pipeline runs on these quantities, which lets a user
check whether the Zipf–Mandelbrot description carries over from packets to
bytes on synthetic traffic.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
from scipy import sparse

from repro._util.validation import check_positive_int
from repro.analysis.histogram import DegreeHistogram, degree_histogram
from repro.streaming.packet import PacketTrace
from repro.streaming.sparse_image import TrafficImage

__all__ = ["byte_image", "weighted_quantities", "byte_histograms", "WEIGHTED_QUANTITY_NAMES"]

#: Names of the byte-weighted streaming quantities.
WEIGHTED_QUANTITY_NAMES = ("source_bytes", "link_bytes", "destination_bytes")


def byte_image(window: PacketTrace) -> TrafficImage:
    """Byte-weighted sparse traffic image ``B_t`` of one window.

    Identical in structure to :func:`repro.streaming.sparse_image.traffic_image`
    but each entry accumulates the packet *sizes* instead of the packet count,
    so ``Σ_ij B_t(i, j)`` equals the window's total valid bytes.
    """
    valid = window.packets[window.packets["valid"]]
    if valid.size == 0:
        return TrafficImage(
            matrix=sparse.csr_matrix((0, 0), dtype=np.int64),
            source_ids=np.zeros(0, dtype=np.int64),
            destination_ids=np.zeros(0, dtype=np.int64),
        )
    source_ids, src_idx = np.unique(valid["src"], return_inverse=True)
    destination_ids, dst_idx = np.unique(valid["dst"], return_inverse=True)
    matrix = sparse.coo_matrix(
        (valid["size"].astype(np.int64), (src_idx, dst_idx)),
        shape=(source_ids.size, destination_ids.size),
    ).tocsr()
    matrix.sum_duplicates()
    return TrafficImage(matrix=matrix, source_ids=source_ids, destination_ids=destination_ids)


def weighted_quantities(image: TrafficImage) -> Mapping[str, np.ndarray]:
    """Byte-weighted Figure-1 quantities of one byte image.

    Returns per-source, per-link, and per-destination byte totals (positive
    integers), analogous to the packet-count quantities.
    """
    matrix = image.matrix
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        empty = np.zeros(0, dtype=np.int64)
        return {name: empty for name in WEIGHTED_QUANTITY_NAMES}
    csr = matrix.tocsr()
    csc = matrix.tocsc()
    return {
        "source_bytes": np.asarray(csr.sum(axis=1)).ravel().astype(np.int64),
        "link_bytes": csr.data.astype(np.int64),
        "destination_bytes": np.asarray(csc.sum(axis=0)).ravel().astype(np.int64),
    }


def byte_histograms(image: TrafficImage, *, bucket_bytes: int = 1024) -> Mapping[str, DegreeHistogram]:
    """Histograms of the byte-weighted quantities in *bucket_bytes* units.

    Byte totals are divided into buckets (kilobytes by default, rounded up so
    every observed entity lands in bucket >= 1), which keeps the support
    integer-valued and compatible with the binary-log pooling and the ZM /
    power-law fitting used for the packet quantities.
    """
    bucket_bytes = check_positive_int(bucket_bytes, "bucket_bytes")
    quantities = weighted_quantities(image)
    histograms = {}
    for name, values in quantities.items():
        positive = values[values > 0]
        if positive.size == 0:
            histograms[name] = degree_histogram([])
            continue
        buckets = np.maximum(1, np.ceil(positive / bucket_bytes).astype(np.int64))
        histograms[name] = degree_histogram(buckets)
    return histograms
