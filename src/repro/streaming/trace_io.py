"""Trace persistence.

Two on-disk formats are supported:

* **v1** — a single compressed ``.npz`` archive holding the packet record
  columns plus a format-version marker.  Minimal and convenient, but it can
  only be read whole, so analysis memory grows with trace length.
* **v2** — a *sharded* trace: a directory containing a ``manifest.json``
  plus consecutive ``shard-NNNNN`` files, each holding a bounded number
  of packets.  Shards can be read one at a time, which is what lets the
  streaming engine (:func:`repro.streaming.pipeline.analyze_trace` with
  ``backend="streaming"``) analyse traces far larger than memory.  Two
  shard layouts exist: ``"npz"`` (compressed archives, the default — small
  on disk, must be decompressed to read) and ``"npy"`` (uncompressed
  structured-record arrays that :func:`iter_trace_chunks` can memory-map
  with ``mmap=True``, so fork'd analysis workers share page cache instead
  of per-process heap copies).

:func:`save_trace` / :func:`load_trace` keep their v1 behaviour
(:func:`load_trace` transparently reads either format);
:func:`save_trace_sharded` writes v2 and :func:`iter_trace_chunks` is the
out-of-core read path shared by both formats (for v1 it degrades to
load-then-chunk, since ``.npz`` archives are not seekable per-row).
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, Iterator, Union

import numpy as np

from repro._util.logging import get_logger
from repro._util.validation import check_positive_int
from repro.streaming.packet import PACKET_DTYPE, PacketTrace

__all__ = [
    "save_trace",
    "load_trace",
    "save_trace_sharded",
    "iter_trace_chunks",
    "rechunk",
    "trace_format",
    "read_json",
    "write_json_atomic",
    "ANALYSIS_COLUMNS",
    "LAYOUT_NAMES",
]

_logger = get_logger("streaming.trace_io")


def write_json_atomic(path: Union[str, os.PathLike], payload) -> Path:
    """Write *payload* as JSON via a same-directory temp file and atomic rename.

    A reader never observes a half-written file: either the previous content
    is still in place or the new content is complete.  This is the manifest
    discipline shared by the sharded-trace format and the campaign result
    store (:mod:`repro.campaigns.store`), whose resumability depends on a
    killed writer leaving no partial records behind.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent, prefix=path.name + ".", suffix=".tmp", delete=False
    )
    try:
        with handle:
            json.dump(payload, handle, indent=1, sort_keys=False)
        os.replace(handle.name, path)
    except BaseException:
        # the temp file may already be gone (os.replace consumed it before
        # failing); the unlink is best-effort cleanup and must never mask
        # the exception that broke the write
        with contextlib.suppress(OSError):
            os.unlink(handle.name)
        raise
    return path


def read_json(path: Union[str, os.PathLike]) -> dict:
    """Read one JSON document (the inverse of :func:`write_json_atomic`)."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)

#: Format version written into every single-file archive.
_FORMAT_VERSION = 1
#: Format version recorded in the manifest of a sharded trace.
_SHARDED_VERSION = 2
#: Manifest file name inside a sharded-trace directory.
_MANIFEST_NAME = "manifest.json"
#: Default shard size (packets) for :func:`save_trace_sharded`.
DEFAULT_SHARD_PACKETS = 250_000
#: Shard layouts of the v2 format: compressed archives or mmappable records.
LAYOUT_NAMES = ("npz", "npy")

_COLUMNS = ("src", "dst", "time", "size", "valid")

#: The columns the window-analysis engine actually reads.  Passing these as
#: ``iter_trace_chunks(..., columns=ANALYSIS_COLUMNS)`` skips decompressing
#: the ``time``/``size`` archive members entirely — a large share of the
#: stored bytes — which is what the analysis read path does.
ANALYSIS_COLUMNS = ("src", "dst", "valid")


def save_trace(trace: PacketTrace, path: Union[str, os.PathLike]) -> Path:
    """Write *trace* to a compressed v1 ``.npz`` archive and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        **{column: trace.packets[column] for column in _COLUMNS},
    )
    # numpy appends .npz when missing; normalise the returned path
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def _records_from_archive(archive, columns=None) -> np.ndarray:
    """Rebuild a packet record array from the named columns of one archive.

    When *columns* restricts the read, the omitted columns are left
    zero-filled and their archive members are never decompressed — callers
    opting in (the analysis engine) promise not to read them.
    """
    wanted = _COLUMNS if columns is None else tuple(columns)
    unknown = set(wanted) - set(_COLUMNS)
    if unknown:
        raise ValueError(f"unknown trace columns {sorted(unknown)}; valid: {_COLUMNS}")
    n = archive["src"].size
    records = np.empty(n, dtype=PACKET_DTYPE) if columns is None else np.zeros(n, dtype=PACKET_DTYPE)
    for column in wanted:
        records[column] = archive[column]
    return records


def trace_format(path: Union[str, os.PathLike]) -> int:
    """Return the on-disk format version of a stored trace (1 or 2)."""
    path = Path(path)
    if path.is_dir():
        manifest = path / _MANIFEST_NAME
        if not manifest.is_file():
            raise ValueError(f"{path} is a directory but holds no {_MANIFEST_NAME}; not a sharded trace")
        return _SHARDED_VERSION
    return _FORMAT_VERSION


def _read_manifest(path: Path) -> dict:
    manifest = read_json(path / _MANIFEST_NAME)
    version = int(manifest.get("version", -1))
    if version != _SHARDED_VERSION:
        raise ValueError(f"unsupported sharded trace format version {version}")
    return manifest


def save_trace_sharded(
    trace: Union[PacketTrace, Iterable[PacketTrace]],
    path: Union[str, os.PathLike],
    *,
    shard_packets: int = DEFAULT_SHARD_PACKETS,
    layout: str = "npz",
) -> Path:
    """Write a v2 sharded trace directory and return its path.

    *trace* may be a :class:`PacketTrace` or an iterator of chunks (so huge
    traces can be written without ever being materialized); chunks are
    re-cut into shards of exactly *shard_packets* packets (last one short).
    Re-saving over an existing sharded trace replaces it: stale shards from
    a previous (longer) save are removed so the directory never mixes runs
    or layouts.

    *layout* picks the shard encoding: ``"npz"`` (compressed column
    archives, smallest on disk) or ``"npy"`` (uncompressed structured
    record arrays — larger, but :func:`iter_trace_chunks` can memory-map
    them with ``mmap=True`` so parallel analysis shares page cache).
    """
    shard_packets = check_positive_int(shard_packets, "shard_packets")
    if layout not in LAYOUT_NAMES:
        raise ValueError(f"unknown shard layout {layout!r}; valid layouts: {LAYOUT_NAMES}")
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise ValueError(
            f"{path} already exists as a file (a v1 trace?); a sharded trace needs a "
            "directory — pick another path or remove the file first"
        )
    path.mkdir(parents=True, exist_ok=True)
    for extension in LAYOUT_NAMES:
        for stale in path.glob(f"shard-*.{extension}"):
            stale.unlink()
    manifest_path = path / _MANIFEST_NAME
    if manifest_path.exists():
        manifest_path.unlink()
    chunks = trace.iter_chunks(shard_packets) if isinstance(trace, PacketTrace) else iter(trace)
    shards = []
    n_packets = 0
    n_valid = 0
    for index, shard in enumerate(rechunk(chunks, shard_packets)):
        name = f"shard-{index:05d}.{layout}"
        if layout == "npy":
            # ascontiguousarray: a sliced/strided chunk must land on disk as
            # plain consecutive records or np.load(mmap_mode=...) misreads it
            np.save(path / name, np.ascontiguousarray(shard.packets))
        else:
            np.savez_compressed(
                path / name,
                **{column: shard.packets[column] for column in _COLUMNS},
            )
        shards.append({"file": name, "n_packets": shard.n_packets, "n_valid": shard.n_valid})
        n_packets += shard.n_packets
        n_valid += shard.n_valid
    write_json_atomic(
        path / _MANIFEST_NAME,
        {
            "version": _SHARDED_VERSION,
            "layout": layout,
            "shard_packets": shard_packets,
            "n_packets": n_packets,
            "n_valid": n_valid,
            "shards": shards,
        },
    )
    return path


def _load_v1_records(path: Path, columns: tuple | None = None) -> np.ndarray:
    """Read one v1 ``.npz`` archive into a packet record array (version-checked)."""
    with np.load(path) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        return _records_from_archive(archive, columns)


def load_trace(path: Union[str, os.PathLike]) -> PacketTrace:
    """Load a trace written by :func:`save_trace` or :func:`save_trace_sharded`."""
    path = Path(path)
    if trace_format(path) == _SHARDED_VERSION:
        chunks = list(iter_trace_chunks(path))
        if not chunks:
            return PacketTrace.empty()
        return PacketTrace(np.concatenate([c.packets for c in chunks]))
    return PacketTrace(_load_v1_records(path))


def iter_trace_chunks(
    path: Union[str, os.PathLike],
    chunk_packets: int | None = None,
    *,
    columns: tuple | None = None,
    mmap: bool = False,
) -> Iterator[PacketTrace]:
    """Stream a stored trace as consecutive :class:`PacketTrace` chunks.

    For a v2 sharded trace this reads one shard at a time — memory stays
    O(shard) regardless of trace length.  For a v1 single-file trace the
    archive must be loaded whole before chunking (``.npz`` offers no partial
    reads); convert with :func:`save_trace_sharded` for true out-of-core use.

    ``chunk_packets`` re-cuts the stored shards to a chosen chunk size
    (splitting and coalescing across shard boundaries as needed); by default
    the stored shard boundaries are used as-is.

    ``columns`` restricts which packet columns are decoded (e.g.
    :data:`ANALYSIS_COLUMNS`); the rest read as zeros and their compressed
    archive members are skipped entirely.  Only opt in when downstream code
    never reads the omitted columns.  (No-op for ``npy``-layout shards,
    whose records are read — or mapped — whole.)

    ``mmap=True`` memory-maps ``npy``-layout shards (``np.load(...,
    mmap_mode="r")``) instead of copying them onto the heap: chunks become
    read-only views of the file's pages, which the OS shares across fork'd
    analysis workers.  Traces in any other layout (compressed ``npz``
    shards, v1 archives) cannot be mapped and fall back to the eager read
    with an info-level log — results are identical either way.
    """
    path = Path(path)
    if chunk_packets is not None:
        chunk_packets = check_positive_int(chunk_packets, "chunk_packets")
    if trace_format(path) == _SHARDED_VERSION:
        chunks = _iter_shards(path, columns, mmap=mmap)
        if chunk_packets is not None:
            chunks = rechunk(chunks, chunk_packets)
        return chunks
    if mmap:
        _logger.info("v1 .npz traces cannot be memory-mapped; reading %s eagerly", path)
    trace = PacketTrace(_load_v1_records(path, columns))
    # iter_chunks already cuts to the exact size; no rechunk pass needed
    return trace.iter_chunks(chunk_packets or max(1, trace.n_packets))


def _iter_shards(
    path: Path, columns: tuple | None = None, *, mmap: bool = False
) -> Iterator[PacketTrace]:
    """Yield the shards of a v2 trace in manifest order, one at a time."""
    manifest = _read_manifest(path)
    layout = str(manifest.get("layout", "npz"))
    if mmap and layout != "npy":
        _logger.info(
            "sharded trace %s stores compressed %s shards, which cannot be "
            "memory-mapped; reading eagerly (re-save with layout='npy' to mmap)",
            path, layout,
        )
        mmap = False
    for entry in manifest["shards"]:
        if layout == "npy":
            records = np.load(path / entry["file"], mmap_mode="r" if mmap else None)
            if records.dtype != PACKET_DTYPE:
                raise ValueError(
                    f"shard {entry['file']} of {path} has dtype {records.dtype}, "
                    "not PACKET_DTYPE; the sharded trace is corrupt"
                )
        else:
            with np.load(path / entry["file"]) as archive:
                records = _records_from_archive(archive, columns)
        yield PacketTrace(records)


def rechunk(chunks: Iterable[PacketTrace], chunk_packets: int) -> Iterator[PacketTrace]:
    """Re-cut a chunk stream into chunks of exactly *chunk_packets* packets.

    The final chunk may be short.  Only up to one output chunk is buffered,
    so re-chunking preserves the out-of-core property of the input stream.
    """
    chunk_packets = check_positive_int(chunk_packets, "chunk_packets")
    pending: list[np.ndarray] = []
    n_pending = 0
    for chunk in chunks:
        arr = chunk.packets
        while arr.size:
            take = min(int(arr.size), chunk_packets - n_pending)
            pending.append(arr[:take])
            n_pending += take
            arr = arr[take:]
            if n_pending == chunk_packets:
                yield PacketTrace(pending[0] if len(pending) == 1 else np.concatenate(pending))
                pending = []
                n_pending = 0
    if n_pending:
        yield PacketTrace(pending[0] if len(pending) == 1 else np.concatenate(pending))
