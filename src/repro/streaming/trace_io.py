"""Trace persistence.

Synthetic traces (and any externally converted captures) are stored as
compressed ``.npz`` archives holding the packet record columns.  The format
is deliberately minimal — five named arrays plus a format-version marker —
so that traces generated once can be reused across benchmark runs without
regenerating multi-million-packet streams.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

import numpy as np

from repro.streaming.packet import PACKET_DTYPE, PacketTrace

__all__ = ["save_trace", "load_trace"]

#: Format version written into every archive.
_FORMAT_VERSION = 1


def save_trace(trace: PacketTrace, path: Union[str, os.PathLike]) -> Path:
    """Write *trace* to a compressed ``.npz`` archive and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        src=trace.packets["src"],
        dst=trace.packets["dst"],
        time=trace.packets["time"],
        size=trace.packets["size"],
        valid=trace.packets["valid"],
    )
    # numpy appends .npz when missing; normalise the returned path
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace(path: Union[str, os.PathLike]) -> PacketTrace:
    """Load a trace previously written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        version = int(archive["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        n = archive["src"].size
        records = np.empty(n, dtype=PACKET_DTYPE)
        records["src"] = archive["src"]
        records["dst"] = archive["dst"]
        records["time"] = archive["time"]
        records["size"] = archive["size"]
        records["valid"] = archive["valid"]
    return PacketTrace(records)
