"""Fused sort-based window kernel.

The per-window hot path of the engine — Table-I aggregates plus all five
Figure-1 quantity histograms — used to be computed through the sparse matrix
``A_t`` (:mod:`repro.streaming.sparse_image`): two ``np.unique`` calls to
compact the endpoint ids, a scipy COO→CSR round-trip, CSR→CSC conversion,
and one ``np.unique`` per histogram.  All of those products are integer
reductions over the multiset of valid ``(src, dst)`` pairs, so one sorted
pass is enough:

1. pack each valid pair into a 64-bit key ``(src << 32) | dst`` and sort;
2. run-length encode the sorted keys — run starts are the distinct links,
   run lengths are ``link_packets``;
3. the high halves of the distinct keys arrive *already grouped by source*
   (the source occupies the top bits), so a second run-length pass yields
   ``source_fanout`` (run lengths) and ``source_packets`` (per-run sums of
   ``link_packets``), plus the distinct-source count;
4. one argsort of the ``m`` distinct destinations (``m ≤ n``, typically far
   smaller) groups the links by destination for ``destination_fanin`` /
   ``destination_packets``;
5. every quantity is a bounded positive integer (``≤ N_V``), so the five
   histograms are ``np.bincount`` scatters instead of five sorts.

The kernel is integer-exact: :func:`fused_products` returns byte-identical
histograms to the :class:`~repro.streaming.sparse_image.TrafficImage` route
(:func:`image_products`, kept as the cross-check oracle — the property
harness in ``tests/test_streaming_kernel.py`` pins the equivalence).  The
``TrafficImage`` itself is no longer built on the hot path; callers that
need the matrix view (Table-I drivers, topology analysis) construct it
lazily via :func:`repro.streaming.sparse_image.traffic_image` as before.

Packing requires endpoint ids in ``[0, 2**32)``; :func:`window_products`
falls back to the oracle path for wider ids, so the kernel is a pure
optimisation, never a behaviour change.

The module also defines the *window payload* shipped to worker processes by
the batched process backend: the raw ``src``/``dst``/``valid`` column
arrays only.  ``time`` and ``size`` are never read by the kernel, and the
29-byte structured packet records would otherwise be re-pickled wholesale;
contiguous column buffers serialize without a repack and cut the per-window
payload to ~16 bytes per packet (the ``valid`` column is elided entirely for
all-valid windows).
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

import numpy as np

from repro.analysis.histogram import DegreeHistogram
from repro.streaming.aggregates import (
    AggregateProperties,
    QUANTITY_NAMES,
    compute_aggregates,
    quantity_histograms,
)
from repro.streaming.packet import PacketTrace
from repro.streaming.sparse_image import traffic_image

__all__ = [
    "KERNEL_MAX_ID",
    "WindowPayload",
    "window_payload",
    "payload_columns",
    "valid_columns",
    "packable",
    "fused_products",
    "image_products",
    "window_products",
    "payload_products",
]

#: Largest endpoint id the packed-key kernel supports (ids are packed into
#: one uint64 as ``(src << 32) | dst``).
KERNEL_MAX_ID = 2**32 - 1

#: Worker payload of one window: ``(src, dst, valid)`` column arrays, with
#: ``valid is None`` meaning every packet is valid (the common case, elided
#: from the pickle).  ``time``/``size`` are deliberately absent — the kernel
#: never reads them.
WindowPayload = Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]

#: Per-window analysis products: the Table-I aggregates and the five
#: Figure-1 histograms, keyed by :data:`~repro.streaming.aggregates.QUANTITY_NAMES`.
WindowProducts = Tuple[AggregateProperties, Mapping[str, DegreeHistogram]]

_EMPTY_INT64 = np.zeros(0, dtype=np.int64)


def window_payload(window: PacketTrace) -> WindowPayload:
    """Extract the shippable columns of one window.

    Copies ``src``/``dst`` out of the structured record array into
    contiguous buffers (strided structured columns pickle poorly) and drops
    ``time``/``size``.  The ``valid`` column is replaced by ``None`` when
    every packet is valid so it costs nothing on clean traffic.
    """
    packets = window.packets
    src = np.ascontiguousarray(packets["src"])
    dst = np.ascontiguousarray(packets["dst"])
    valid = packets["valid"]
    return (src, dst, np.ascontiguousarray(valid) if not valid.all() else None)


def payload_columns(payload: WindowPayload) -> Tuple[np.ndarray, np.ndarray]:
    """Resolve a payload to the valid-only ``(src, dst)`` columns (worker side)."""
    src, dst, valid = payload
    if valid is None:
        return src, dst
    return src[valid], dst[valid]


def valid_columns(window: PacketTrace) -> Tuple[np.ndarray, np.ndarray]:
    """Valid-only ``(src, dst)`` columns of an in-memory window."""
    packets = window.packets
    valid = packets["valid"]
    if valid.all():
        return np.ascontiguousarray(packets["src"]), np.ascontiguousarray(packets["dst"])
    return packets["src"][valid], packets["dst"][valid]


def packable(src: np.ndarray, dst: np.ndarray) -> bool:
    """Whether every endpoint id fits the packed ``(src << 32) | dst`` key."""
    if src.size == 0:
        return True
    lo = min(int(src.min()), int(dst.min()))
    hi = max(int(src.max()), int(dst.max()))
    return lo >= 0 and hi <= KERNEL_MAX_ID


def _run_starts(values: np.ndarray) -> np.ndarray:
    """Indices where a new run begins in an already-sorted array."""
    change = np.empty(values.size, dtype=bool)
    change[0] = True
    np.not_equal(values[1:], values[:-1], out=change[1:])
    return np.flatnonzero(change)


def _empty_products() -> WindowProducts:
    histograms = {
        name: DegreeHistogram(degrees=_EMPTY_INT64, counts=_EMPTY_INT64)
        for name in QUANTITY_NAMES
    }
    return AggregateProperties(0, 0, 0, 0), histograms


def fused_products(src: np.ndarray, dst: np.ndarray) -> WindowProducts:
    """Aggregates and histograms of one window from its valid columns.

    *src*/*dst* must be the valid-only endpoint columns with every id in
    ``[0, 2**32)`` (see :func:`packable`); :func:`window_products` handles
    the dispatch.  Returns products byte-identical to :func:`image_products`.
    """
    n = int(src.size)
    if n == 0:
        return _empty_products()

    key = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
    key.sort()

    # distinct links and packets per link
    starts = _run_starts(key)
    m = int(starts.size)
    bounds = np.append(starts, n)
    link_packets = np.diff(bounds)
    unique_keys = key[starts]

    # sources: the sorted keys group by source already (top 32 bits)
    u_src = unique_keys >> np.uint64(32)
    src_starts = _run_starts(u_src)
    src_bounds = np.append(src_starts, m)
    source_fanout = np.diff(src_bounds)
    link_cumsum = np.concatenate([[0], np.cumsum(link_packets)])
    source_packets = link_cumsum[src_bounds[1:]] - link_cumsum[src_bounds[:-1]]

    # destinations: regroup the m distinct links (not the n packets) by dst
    u_dst = (unique_keys & np.uint64(KERNEL_MAX_ID)).astype(np.int64)
    dst_order = np.argsort(u_dst, kind="stable")
    dst_starts = _run_starts(u_dst[dst_order])
    dst_bounds = np.append(dst_starts, m)
    destination_fanin = np.diff(dst_bounds)
    link_by_dst_cumsum = np.concatenate([[0], np.cumsum(link_packets[dst_order])])
    destination_packets = link_by_dst_cumsum[dst_bounds[1:]] - link_by_dst_cumsum[dst_bounds[:-1]]

    aggregates = AggregateProperties(
        valid_packets=n,
        unique_links=m,
        unique_sources=int(src_starts.size),
        unique_destinations=int(dst_starts.size),
    )
    histograms = {}
    for name, values in (
        ("source_packets", source_packets),
        ("source_fanout", source_fanout),
        ("link_packets", link_packets),
        ("destination_fanin", destination_fanin),
        ("destination_packets", destination_packets),
    ):
        # every value is a positive integer <= n, so the histogram is one
        # bincount scatter; index 0 (degree zero) is empty by construction
        histograms[name] = DegreeHistogram._from_dense_trusted(np.bincount(values)[1:])
    return aggregates, histograms


def image_products(src: np.ndarray, dst: np.ndarray) -> WindowProducts:
    """The legacy ``TrafficImage`` route, kept as the kernel's oracle.

    Builds the sparse matrix from the valid columns and computes the same
    products through :func:`~repro.streaming.aggregates.compute_aggregates`
    and :func:`~repro.streaming.aggregates.quantity_histograms` — the
    independent implementation the property harness checks the kernel
    against, and the fallback for ids the packed key cannot hold.
    """
    image = traffic_image(PacketTrace.from_arrays(src, dst))
    return compute_aggregates(image), quantity_histograms(image)


def window_products(window: PacketTrace) -> WindowProducts:
    """Analyse one window: fused kernel when the ids pack, oracle otherwise."""
    src, dst = valid_columns(window)
    if packable(src, dst):
        return fused_products(src, dst)
    return image_products(src, dst)


def payload_products(payload: WindowPayload) -> WindowProducts:
    """Analyse one shipped window payload (worker side of the process backend)."""
    src, dst = payload_columns(payload)
    if packable(src, dst):
        return fused_products(src, dst)
    return image_products(src, dst)
