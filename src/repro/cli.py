"""Command-line interface.

Exposes the main workflows as subcommands of ``python -m repro`` (or the
``repro`` console script when installed):

* ``generate`` — build a PALU underlying network and emit a synthetic packet
  trace to an ``.npz`` file,
* ``analyze``  — window a trace, print Table-I aggregates, pooled
  distributions, and the per-quantity Zipf–Mandelbrot fits (the Figure-3
  workflow),
* ``fit``      — fit the ZM, PALU, and power-law models to the degree data of
  one quantity of a trace and print the comparison,
* ``experiments`` — run the table/figure reproduction drivers and print their
  rows (what EXPERIMENTS.md is built from),
* ``scenarios`` — list the registered time-varying workload scenarios, or
  run one through the streaming engine and print the per-phase pooled
  distributions and the adjacent-phase drift statistic,
* ``detect`` — list the online drift detectors, or run a scenario with
  detection riding the single-pass engine and score the alarms against the
  scenario's ground-truth phase boundaries (latency, precision/recall,
  false-alarm rate),
* ``campaign`` — run, resume, inspect, and report declarative sweep grids
  backed by the content-addressed result store (``repro.campaigns``),
* ``serve`` — run the resident streaming-analysis daemon: registered jobs
  fold newline-delimited JSON packet batches incrementally through the
  same engine as one-shot analyses, report progress on ``/status``, and
  flush results to a result store on graceful shutdown,
* ``jobs`` — talk to a running daemon: submit job configs, feed scenario
  batches, and poll job status.

Every subcommand is a thin wrapper over the public API so that anything the
CLI does can be scripted directly in Python.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.comparison import compare_models
from repro.analysis.pooling import pool_differential_cumulative, pool_probability_vector
from repro.analysis.reporting import render_pooled_panel
from repro.analysis.summary import format_table
from repro.core.distributions import DiscretePowerLaw
from repro.core.palu_fit import fit_palu
from repro.core.palu_model import PALUParameters
from repro.core.powerlaw_fit import fit_power_law
from repro.core.zm_fit import fit_zipf_mandelbrot
from repro.detect.detectors import DETECTOR_NAMES
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.parallel import BACKEND_NAMES
from repro.streaming.pipeline import MODE_NAMES, analyze_trace
from repro.streaming.sketch import SketchConfig
from repro.streaming.trace_generator import TraceConfig, generate_trace_from_graph
from repro.streaming.trace_io import (
    LAYOUT_NAMES,
    load_trace,
    save_trace,
    save_trace_sharded,
    trace_format,
)

__all__ = ["build_parser", "main"]


def _add_transport_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--payload-transport`` knob of the process backend."""
    from repro.streaming.shm import TRANSPORT_NAMES

    parser.add_argument("--payload-transport", choices=list(TRANSPORT_NAMES), default=None,
                        help="how the process backend ships window columns to workers: "
                             "'shm' (shared-memory segments, zero-copy — the default "
                             "where supported) or 'pickle' (bytes through each task); "
                             "results are bit-identical either way")


def _add_sketch_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--sketch-*`` knobs of the sketch tier to *parser*."""
    parser.add_argument("--sketch-epsilon", type=float, default=None,
                        help="Count-Min additive error bound ε as a fraction of window "
                             "packets (sketch mode only; default 1e-3)")
    parser.add_argument("--sketch-delta", type=float, default=None,
                        help="probability δ that a Count-Min estimate exceeds its ε "
                             "bound (sketch mode only; default 0.05)")
    parser.add_argument("--sketch-seed", type=int, default=None,
                        help="hash seed of the sketch tier; results are deterministic "
                             "per seed on every backend and chunking")


def _sketch_from_args(args: argparse.Namespace) -> SketchConfig | None:
    """The :class:`SketchConfig` implied by ``--sketch-*`` flags (None if untouched)."""
    overrides: dict[str, float | int] = {}
    if args.sketch_epsilon is not None:
        overrides["epsilon"] = args.sketch_epsilon
    if args.sketch_delta is not None:
        overrides["delta"] = args.sketch_delta
    if args.sketch_seed is not None:
        overrides["seed"] = args.sketch_seed
    return SketchConfig(**overrides) if overrides else None


def _sketch_bounds_rows(bounds) -> list[dict]:
    """Render a mapping of :class:`SketchBounds` as printable table rows."""
    return [
        {
            "quantity": name,
            "estimator": b.estimator,
            "epsilon": "-" if b.epsilon is None else f"{b.epsilon:.2e}",
            "delta": "-" if b.delta is None else f"{b.delta:.4f}",
            "rel_err": f"{b.relative_error:.4f}",
        }
        for name, b in bounds.items()
    ]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser with all subcommands."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Hybrid Power-Law Models of Network Traffic' (PALU model).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
        help="print the package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    gen = subparsers.add_parser("generate", help="generate a PALU network and a synthetic trace")
    gen.add_argument("output", help="path of the .npz trace file to write")
    gen.add_argument("--nodes", type=int, default=30_000, help="underlying-network size")
    gen.add_argument("--packets", type=int, default=400_000, help="number of packets to emit")
    gen.add_argument("--core", type=float, default=0.55, help="core class weight")
    gen.add_argument("--leaves", type=float, default=0.25, help="leaf class weight")
    gen.add_argument("--unattached", type=float, default=0.20, help="unattached class weight")
    gen.add_argument("--lam", type=float, default=2.0, help="Poisson mean of star sizes (λ)")
    gen.add_argument("--alpha", type=float, default=2.0, help="core power-law exponent")
    gen.add_argument("--rate-exponent", type=float, default=1.2,
                     help="Zipf exponent of the per-link rate model")
    gen.add_argument("--invalid-fraction", type=float, default=0.0,
                     help="fraction of packets flagged invalid")
    gen.add_argument("--seed", type=int, default=0, help="random seed")
    gen.add_argument("--shard-packets", type=int, default=None,
                     help="write a v2 sharded trace directory with this many packets per shard "
                          "(enables out-of-core analysis); default: single v1 .npz file")
    gen.add_argument("--layout", choices=list(LAYOUT_NAMES), default="npz",
                     help="shard encoding for --shard-packets: 'npz' (compressed, smallest) "
                          "or 'npy' (uncompressed records that 'analyze --mmap' can memory-map)")
    gen.set_defaults(func=_cmd_generate)

    ana = subparsers.add_parser("analyze", help="windowed Figure-3 style analysis of a trace")
    ana.add_argument("trace", help="path of a .npz trace written by 'generate'")
    ana.add_argument("--nv", type=int, default=100_000, help="window size N_V in valid packets")
    ana.add_argument("--quantities", nargs="+", default=list(QUANTITY_NAMES),
                     choices=list(QUANTITY_NAMES), help="which Figure-1 quantities to analyse")
    ana.add_argument("--workers", type=int, default=None,
                     help="worker processes for the window map "
                          "(default: 1, or auto with --backend process)")
    ana.add_argument("--backend", choices=list(BACKEND_NAMES), default=None,
                     help="execution backend (default: serial, or process when --workers > 1); "
                          "'streaming' analyses the trace out-of-core, chunk by chunk")
    ana.add_argument("--chunk-packets", type=int, default=None,
                     help="read/cut the trace in chunks of this many packets "
                          "(bounds memory under --backend streaming)")
    ana.add_argument("--batch-windows", type=int, default=None,
                     help="windows moved per backend task / prefetch slot "
                          "(default: auto; an execution knob — never changes results)")
    _add_transport_argument(ana)
    ana.add_argument("--mmap", action="store_true",
                     help="memory-map npy-layout shards instead of loading them "
                          "(see 'generate --layout npy'); other formats fall back "
                          "to the eager read")
    ana.add_argument("--mode", choices=list(MODE_NAMES), default="exact",
                     help="per-window analysis tier: 'exact' (fused kernel) or 'sketch' "
                          "(Count-Min/HyperLogLog estimates in sub-linear memory, with "
                          "printed error bounds)")
    _add_sketch_arguments(ana)
    ana.add_argument("--panel", action="store_true",
                     help="also render a text panel of each pooled distribution")
    ana.set_defaults(func=_cmd_analyze)

    fit = subparsers.add_parser("fit", help="fit ZM / PALU / power-law models to one quantity")
    fit.add_argument("trace", help="path of a .npz trace")
    fit.add_argument("--quantity", default="source_fanout", choices=list(QUANTITY_NAMES))
    fit.add_argument("--nv", type=int, default=100_000, help="window size N_V in valid packets")
    fit.set_defaults(func=_cmd_fit)

    exp = subparsers.add_parser("experiments", help="run the table/figure reproduction drivers")
    exp.add_argument(
        "which",
        nargs="*",
        default=["table1", "fig1", "fig2", "fig4"],
        choices=["table1", "fig1", "fig2", "fig3", "fig4", "expectations", "recovery", "ablations"],
        help="which experiments to run (default: the fast ones)",
    )
    exp.add_argument("--backend", choices=list(BACKEND_NAMES), default=None,
                     help="execution backend for drivers that analyse traces (fig3)")
    exp.add_argument("--chunk-packets", type=int, default=None,
                     help="trace chunk size for the streaming backend")
    exp.add_argument("--workers", type=int, default=None,
                     help="worker processes for the fig3 window map (default: 4, "
                          "ignored by the streaming backend)")
    exp.add_argument("--store", default=None,
                     help="result-store directory: cache each experiment's rows under a "
                          "content key so repeated invocations are O(read)")
    exp.set_defaults(func=_cmd_experiments)

    scen = subparsers.add_parser("scenarios", help="time-varying traffic workload scenarios")
    scen_sub = scen.add_subparsers(dest="scenarios_command", required=True)

    scen_list = scen_sub.add_parser("list", help="list the registered scenarios")
    scen_list.set_defaults(func=_cmd_scenarios_list)

    scen_run = scen_sub.add_parser(
        "run", help="generate and analyse one scenario in a single bounded-memory pass"
    )
    scen_run.add_argument("name", help="a registered scenario name (see 'scenarios list')")
    scen_run.add_argument("--nv", type=int, default=5_000, help="window size N_V in valid packets")
    scen_run.add_argument("--seed", type=int, default=0, help="scenario seed")
    scen_run.add_argument("--quantities", nargs="+", default=list(QUANTITY_NAMES),
                          choices=list(QUANTITY_NAMES), help="which Figure-1 quantities to analyse")
    scen_run.add_argument("--backend", choices=list(BACKEND_NAMES), default=None,
                          help="execution backend (default: serial); 'streaming' keeps peak "
                               "buffering bounded by --chunk-packets")
    scen_run.add_argument("--workers", type=int, default=None,
                          help="worker processes for the window map (process backend)")
    _add_transport_argument(scen_run)
    scen_run.add_argument("--batch-windows", type=int, default=None,
                          help="windows moved per backend task / prefetch slot (default: auto)")
    scen_run.add_argument("--chunk-packets", type=int, default=None,
                          help="emit the scenario trace in chunks of this many packets "
                               "(bounds memory under --backend streaming)")
    scen_run.add_argument("--mode", choices=list(MODE_NAMES), default="exact",
                          help="per-window analysis tier: 'exact' (fused kernel) or "
                               "'sketch' (Count-Min/HyperLogLog estimates)")
    _add_sketch_arguments(scen_run)
    scen_run.set_defaults(func=_cmd_scenarios_run)

    det = subparsers.add_parser(
        "detect", help="online drift detection over the streaming engine"
    )
    det_sub = det.add_subparsers(dest="detect_command", required=True)

    det_list = det_sub.add_parser("list", help="list the built-in drift detectors")
    det_list.set_defaults(func=_cmd_detect_list)

    det_run = det_sub.add_parser(
        "run",
        help="run one scenario with online detection and score the alarms "
             "against the scenario's ground-truth phase boundaries",
    )
    det_run.add_argument("name", help="a registered scenario name (see 'scenarios list')")
    det_run.add_argument("--nv", type=int, default=2_000, help="window size N_V in valid packets")
    det_run.add_argument("--seed", type=int, default=0, help="scenario seed")
    det_run.add_argument("--detectors", nargs="+", default=list(DETECTOR_NAMES),
                         choices=list(DETECTOR_NAMES),
                         help="which detectors ride the analysis pass")
    det_run.add_argument("--quantity", default=None, choices=list(QUANTITY_NAMES),
                         help="pooled quantity the detectors monitor "
                              "(default: source_fanout)")
    det_run.add_argument("--max-latency", type=int, default=8,
                         help="windows after a true boundary within which an alarm "
                              "counts as detecting it")
    det_run.add_argument("--backend", choices=list(BACKEND_NAMES), default=None,
                         help="execution backend (alarm sequences are identical on all)")
    det_run.add_argument("--workers", type=int, default=None,
                         help="worker processes for the window map (process backend)")
    det_run.add_argument("--chunk-packets", type=int, default=None,
                         help="emit the scenario trace in chunks of this many packets "
                              "(bounds memory under --backend streaming)")
    _add_transport_argument(det_run)
    det_run.add_argument("--batch-windows", type=int, default=None,
                         help="windows moved per backend task / prefetch slot "
                              "(default: auto; an execution knob — never changes alarms)")
    det_run.add_argument("--mode", choices=list(MODE_NAMES), default="exact",
                         help="per-window analysis tier: 'exact' (fused kernel) or "
                              "'sketch' (detectors monitor the sketched histograms)")
    _add_sketch_arguments(det_run)
    det_run.set_defaults(func=_cmd_detect_run)

    camp = subparsers.add_parser(
        "campaign", help="declarative sweep grids over the content-addressed result store"
    )
    camp_sub = camp.add_subparsers(dest="campaign_command", required=True)

    camp_run = camp_sub.add_parser(
        "run", help="run (or resume) a campaign grid; completed cells are never recomputed"
    )
    camp_run.add_argument("--store", required=True,
                          help="result-store directory (created if absent)")
    camp_run.add_argument("--name", default="default", help="campaign name inside the store")
    camp_run.add_argument("--scenarios", nargs="+", required=True,
                          help="registered scenario names forming the grid's first axis")
    camp_run.add_argument("--seeds", nargs="+", type=int, default=[0],
                          help="scenario seeds (second grid axis)")
    camp_run.add_argument("--nv", nargs="+", type=int, default=[5_000],
                          help="window sizes N_V in valid packets (third grid axis)")
    camp_run.add_argument("--quantities", nargs="+", default=list(QUANTITY_NAMES),
                          choices=list(QUANTITY_NAMES), help="which Figure-1 quantities to analyse")
    camp_run.add_argument("--detectors", nargs="+", default=[],
                          choices=list(DETECTOR_NAMES),
                          help="online drift detectors to run in every cell "
                               "(part of the content key; default: none)")
    camp_run.add_argument("--modes", nargs="+", default=["exact"],
                          choices=list(MODE_NAMES),
                          help="per-window analysis tiers (fourth grid axis; exact and "
                               "sketched cells store distinct results)")
    _add_sketch_arguments(camp_run)
    camp_run.add_argument("--backends", nargs="+", default=["serial"],
                          choices=list(BACKEND_NAMES),
                          help="execution backends (fifth grid axis; cells differing only "
                               "in backend share one stored result)")
    camp_run.add_argument("--chunk-packets", type=int, default=None,
                          help="trace chunk size for streaming-backend cells")
    camp_run.add_argument("--pool", choices=["serial", "process"], default="serial",
                          help="run-level fan-out: compute independent cells serially or "
                               "across worker processes")
    camp_run.add_argument("--pool-workers", type=int, default=None,
                          help="worker count for --pool process")
    camp_run.add_argument("--max-cells", type=int, default=None,
                          help="compute at most this many missing cells (partial sweep; "
                               "re-running resumes the rest)")
    camp_run.add_argument("--recompute", action="store_true",
                          help="ignore stored results and recompute every cell")
    camp_run.add_argument("--cell-retries", type=int, default=0,
                          help="retry a failing cell up to this many extra times "
                               "(while holding its lease) before recording it as "
                               "failed; attempts are surfaced in status/report "
                               "rows (default 0)")
    camp_run.add_argument("--workers", type=int, default=1,
                          help="fleet size N: how many 'campaign run' processes sweep this "
                               "grid against the shared store (default 1; start one process "
                               "per worker with matching --worker-id)")
    camp_run.add_argument("--worker-id", default=None, metavar="K/N",
                          help="this process's fleet identity, e.g. 2/4 (default 1/N); "
                               "workers shard the missing cells deterministically and "
                               "steal each other's stale leases")
    camp_run.add_argument("--lease-ttl", type=float, default=None, metavar="SECONDS",
                          help="heartbeat TTL after which a cell lease counts as stale and "
                               "may be taken over (default 30; use one value per fleet)")
    camp_run.add_argument("--heartbeat", type=float, default=None, metavar="SECONDS",
                          help="lease heartbeat period while computing (default: TTL / 3)")
    camp_run.set_defaults(func=_cmd_campaign_run)

    camp_status = camp_sub.add_parser(
        "status", help="show fleet progress (stored/leased/stale/missing) for stored campaigns"
    )
    camp_status.add_argument("--store", required=True, help="result-store directory")
    camp_status.add_argument("name", nargs="?", default=None,
                             help="campaign name (default: summarize every campaign)")
    camp_status.add_argument("--lease-ttl", type=float, default=None, metavar="SECONDS",
                             help="staleness threshold used to age leases (default 30; "
                                  "match the fleet's --lease-ttl)")
    camp_status.add_argument("--check", action="store_true",
                             help="exit non-zero unless every campaign is complete and no "
                                  "lease is outstanding (for CI smokes and fleet scripts)")
    camp_status.set_defaults(func=_cmd_campaign_status)

    camp_report = camp_sub.add_parser(
        "report", help="assemble the cross-run comparison tables from the store"
    )
    camp_report.add_argument("--store", required=True, help="result-store directory")
    camp_report.add_argument("name", help="campaign name")
    camp_report.add_argument("--quantity", default="source_fanout",
                             choices=list(QUANTITY_NAMES),
                             help="quantity the cell/summary tables report")
    camp_report.set_defaults(func=_cmd_campaign_report)

    srv = subparsers.add_parser(
        "serve", help="run the resident streaming-analysis daemon (repro.service)"
    )
    srv.add_argument("--job", action="append", default=[], metavar="CONFIG.json",
                     help="versioned job-config file to register at startup "
                          "(repeatable; more jobs may be submitted over HTTP)")
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument("--port", type=int, default=8732,
                     help="bind port (0 binds an ephemeral port)")
    srv.add_argument("--store", default=None,
                     help="result-store directory job results are flushed into on "
                          "graceful shutdown (and on POST /jobs/<job>/flush)")
    srv.add_argument("--max-batch-bytes", type=int, default=None,
                     help="request-body cap; oversized ingest requests get a "
                          "structured 413 (default 8 MiB)")
    srv.add_argument("--max-buffered-packets", type=int, default=None,
                     help="ingest back-pressure: a job holding this many unfolded "
                          "packets answers ingests with a structured 429 + "
                          "Retry-After until the fold catches up (a job config's "
                          "limits.max_buffered_packets overrides it; default: "
                          "unlimited)")
    srv.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                     help="write a durable checkpoint of each job's exact fold "
                          "state every N ingested batches (requires --store)")
    srv.add_argument("--checkpoint-seconds", type=float, default=None, metavar="S",
                     help="also checkpoint when S seconds passed since a job's "
                          "last one (requires --store; combines with "
                          "--checkpoint-every)")
    srv.add_argument("--resume", action="store_true",
                     help="restore each job from its newest valid checkpoint in "
                          "--store at startup; feeders then replay unacked "
                          "batches idempotently (requires --store)")
    srv.set_defaults(func=_cmd_serve)

    jobs = subparsers.add_parser(
        "jobs", help="talk to a running 'repro serve' daemon over HTTP"
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    jobs_submit = jobs_sub.add_parser("submit", help="submit a job config to the daemon")
    jobs_submit.add_argument("config", help="job-config JSON file")
    jobs_submit.add_argument("--url", required=True, metavar="http://HOST:PORT",
                             help="base URL of the daemon")
    jobs_submit.add_argument("--retries", type=int, default=0,
                             help="retry transport failures (connection refused/reset) "
                                  "this many times with exponential backoff "
                                  "(default 0: fail fast)")
    jobs_submit.set_defaults(func=_cmd_jobs_submit)

    jobs_status = jobs_sub.add_parser("status", help="print daemon or per-job status")
    jobs_status.add_argument("name", nargs="?", default=None,
                             help="job name (default: every job)")
    jobs_status.add_argument("--url", required=True, metavar="http://HOST:PORT",
                             help="base URL of the daemon")
    jobs_status.add_argument("--min-windows", type=int, default=None,
                             help="poll until the job has folded at least this many "
                                  "windows (requires a job name; exits 1 on timeout)")
    jobs_status.add_argument("--timeout", type=float, default=30.0,
                             help="polling deadline in seconds for --min-windows")
    jobs_status.set_defaults(func=_cmd_jobs_status)

    jobs_feed = jobs_sub.add_parser(
        "feed", help="generate a scenario's packet stream and feed it to a job in batches"
    )
    jobs_feed.add_argument("name", help="target job name on the daemon")
    jobs_feed.add_argument("--url", required=True, metavar="http://HOST:PORT",
                           help="base URL of the daemon")
    jobs_feed.add_argument("--scenario", required=True,
                           help="registered scenario name (see 'scenarios list')")
    jobs_feed.add_argument("--seed", type=int, default=0, help="scenario seed")
    jobs_feed.add_argument("--batch-packets", type=int, default=50_000,
                           help="packets per POSTed batch")
    jobs_feed.add_argument("--retries", type=int, default=0,
                           help="retry transport failures (connection refused/reset) "
                                "this many times per batch with exponential backoff "
                                "(default 0: fail fast); daemon 429 back-pressure is "
                                "always honored with backoff regardless")
    jobs_feed.set_defaults(func=_cmd_jobs_feed)

    return parser


# ---------------------------------------------------------------------------
# subcommand implementations
# ---------------------------------------------------------------------------


def _cmd_generate(args: argparse.Namespace) -> int:
    params = PALUParameters.from_weights(
        args.core, args.leaves, args.unattached, lam=args.lam, alpha=args.alpha, strict=False
    )
    print("PALU parameters:", {k: round(v, 4) for k, v in params.as_dict().items()})
    palu = generate_palu_graph(params, n_nodes=args.nodes, rng=args.seed)
    print(f"underlying network: {palu.n_nodes} nodes, {palu.n_edges} edges")
    config = TraceConfig(
        n_packets=args.packets,
        rate_model="zipf",
        rate_exponent=args.rate_exponent,
        invalid_fraction=args.invalid_fraction,
    )
    trace = generate_trace_from_graph(palu, config, rng=args.seed + 1)
    if args.shard_packets is not None:
        path = save_trace_sharded(
            trace, args.output, shard_packets=args.shard_packets, layout=args.layout
        )
    else:
        if args.layout != "npz":
            print("error: --layout applies to sharded traces; pass --shard-packets too")
            return 2
        path = save_trace(trace, args.output)
    print(f"wrote {trace.n_packets} packets ({trace.n_valid} valid) to {path}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    sketch = _sketch_from_args(args)
    if args.mode != "sketch" and sketch is not None:
        print("error: --sketch-* options require --mode sketch")
        return 2
    if args.backend == "streaming":
        if args.workers is not None:
            print("note: --workers is ignored by the streaming backend (single-threaded fold)")
        if args.payload_transport is not None:
            print("error: --payload-transport applies to the process backend only")
            return 2
        if Path(args.trace).exists() and trace_format(args.trace) == 1:
            print("note: v1 .npz archives load whole before chunking; generate with "
                  "--shard-packets for true out-of-core reads")
        # out-of-core path: hand the engine the path so shards stream from disk
        print(f"streaming trace from {args.trace}")
        analysis = analyze_trace(
            args.trace,
            args.nv,
            quantities=tuple(args.quantities),
            backend="streaming",
            chunk_packets=args.chunk_packets,
            batch_windows=args.batch_windows,
            mode=args.mode,
            sketch=sketch,
            mmap=args.mmap,
        )
        stats = analysis.engine_stats
        print(f"engine: backend={stats['backend']} chunks={stats.get('n_chunks')} "
              f"peak buffered packets={stats.get('max_buffered_packets')}")
    elif args.mmap:
        # memory-mapped path: hand the engine the path so shards map, never load
        print(f"mapping trace shards from {args.trace}")
        analysis = analyze_trace(
            args.trace,
            args.nv,
            quantities=tuple(args.quantities),
            n_workers=args.workers,
            backend=args.backend,
            chunk_packets=args.chunk_packets,
            batch_windows=args.batch_windows,
            mode=args.mode,
            sketch=sketch,
            payload_transport=args.payload_transport,
            mmap=True,
        )
        stats = analysis.engine_stats
        print(f"engine: backend={stats['backend']}"
              + (f" transport={stats['payload_transport']}" if "payload_transport" in stats else ""))
    else:
        trace = load_trace(args.trace)
        print(f"loaded {trace.n_packets} packets ({trace.n_valid} valid) from {args.trace}")
        analysis = analyze_trace(
            trace,
            args.nv,
            quantities=tuple(args.quantities),
            n_workers=args.workers,
            backend=args.backend,
            chunk_packets=args.chunk_packets,
            batch_windows=args.batch_windows,
            mode=args.mode,
            sketch=sketch,
            payload_transport=args.payload_transport,
        )
        stats = analysis.engine_stats
        if "payload_transport" in stats:
            print(f"engine: backend={stats['backend']} transport={stats['payload_transport']}")
    print(f"{analysis.n_windows} windows of N_V = {args.nv} valid packets\n")
    print("Table-I aggregates per window:")
    print(format_table(analysis.aggregates_table()))
    if analysis.bounds:
        print("\nsketch error bounds (merged estimates):")
        print(format_table(_sketch_bounds_rows(analysis.bounds)))
    rows = []
    for quantity in args.quantities:
        pooled = analysis.pooled(quantity)
        fit = analysis.fit_zipf_mandelbrot(quantity)
        rows.append(
            {
                "quantity": quantity,
                "alpha": round(fit.alpha, 3),
                "delta": round(fit.delta, 3),
                "D(d=1)": round(float(pooled.values[0]), 4),
                "dmax": analysis.dmax(quantity),
                "log_mse": round(fit.error, 5),
            }
        )
    print("\nZipf-Mandelbrot fits per quantity:")
    print(format_table(rows))
    if args.panel:
        for quantity in args.quantities:
            pooled = analysis.pooled(quantity)
            fit = analysis.fit_zipf_mandelbrot(quantity)
            model_pooled = pool_probability_vector(fit.model().probability())
            print()
            print(render_pooled_panel(pooled, model_pooled, title=f"{quantity} (α={fit.alpha:.2f}, δ={fit.delta:.2f})"))
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace)
    analysis = analyze_trace(trace, args.nv, quantities=(args.quantity,))
    hist = analysis.merged_histogram(args.quantity)
    pooled = pool_differential_cumulative(hist)

    zm = fit_zipf_mandelbrot(pooled, dmax=hist.dmax)
    palu = fit_palu(hist)
    baseline = fit_power_law(hist, d_min=1)
    print(f"quantity: {args.quantity}   observations: {hist.total}   dmax: {hist.dmax}\n")
    print("Zipf-Mandelbrot:", zm.as_row())
    print("PALU (reduced): ", palu.as_row())
    print("power law:      ", baseline.as_row())

    comparison = compare_models(
        hist,
        pooled,
        {
            "zipf_mandelbrot": zm.model().distribution(),
            "palu": palu.distribution(hist.dmax),
            "power_law": DiscretePowerLaw(baseline.alpha, hist.dmax),
        },
        n_parameters={"zipf_mandelbrot": 2, "palu": 5, "power_law": 1},
    )
    print("\nmodel comparison (best first):")
    print(format_table([c.as_row() for c in comparison]))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro import experiments as exp

    # historical default: fig3 ran on 4 workers; keep that unless the user
    # chose a backend (whose own worker semantics then apply) or a count
    fig3_workers = args.workers
    if fig3_workers is None and args.backend is None:
        fig3_workers = 4

    runners = {
        "table1": lambda: exp.run_table1(),
        "fig1": lambda: exp.run_fig1(),
        "fig2": lambda: exp.run_fig2(),
        "fig3": lambda: exp.run_fig3(
            n_workers=fig3_workers, backend=args.backend, chunk_packets=args.chunk_packets
        ),
        "fig4": lambda: exp.run_fig4(),
        "expectations": lambda: exp.run_palu_expectations(),
        "recovery": lambda: exp.run_palu_recovery(),
        "ablations": lambda: (
            exp.run_window_invariance_ablation()
            + [exp.run_lambda_estimator_ablation()]
            + exp.run_webcrawl_ablation()
        ),
    }
    store = None
    if args.store is not None:
        from repro.campaigns.store import ResultStore

        store = ResultStore(args.store)

    for name in args.which:
        header = f"\n=== {name} ==="
        if store is not None:
            # execution knobs (backend/workers/chunking) are excluded from the
            # key on purpose: they never change the rows, only how fast they
            # are produced — the same contract campaign cells follow
            rows, cached = store.cached_rows(name, {}, runners[name])
            header += " [cached]" if cached else " [computed]"
        else:
            rows = runners[name]()
        print(header)
        if isinstance(rows, dict):
            rows = [rows]
        print(format_table(rows))
    return 0


def _cmd_scenarios_list(args: argparse.Namespace) -> int:
    from repro.scenarios import iter_scenarios

    rows = [
        {
            "name": scenario.name,
            "phases": scenario.n_phases,
            "packets": scenario.n_packets,
            "crossfade": scenario.crossfade_packets,
            "description": scenario.description,
        }
        for scenario in iter_scenarios()
    ]
    print(format_table(rows))
    return 0


def _cmd_scenarios_run(args: argparse.Namespace) -> int:
    from repro.scenarios import analyze_scenario, get_scenario

    sketch = _sketch_from_args(args)
    if args.mode != "sketch" and sketch is not None:
        print("error: --sketch-* options require --mode sketch")
        return 2
    try:
        scenario = get_scenario(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    print(f"scenario {scenario.name!r}: {scenario.n_phases} phases, "
          f"{scenario.n_packets} packets, crossfade {scenario.crossfade_packets}")
    run = analyze_scenario(
        scenario,
        args.nv,
        seed=args.seed,
        quantities=tuple(args.quantities),
        backend=args.backend,
        n_workers=args.workers,
        chunk_packets=args.chunk_packets,
        batch_windows=args.batch_windows,
        mode=args.mode,
        sketch=sketch,
        payload_transport=args.payload_transport,
    )
    stats = run.engine_stats
    print(f"engine: backend={stats['backend']} chunks={stats.get('n_chunks')} "
          f"peak buffered packets={stats.get('max_buffered_packets')}"
          + (f" transport={stats['payload_transport']}" if "payload_transport" in stats else ""))
    print(f"{run.analysis.n_windows} windows of N_V = {args.nv} valid packets")
    for quantity in args.quantities:
        print(f"\nphase summary — {quantity}:")
        print(format_table(run.phases.as_rows(quantity)))
        drifts = run.phases.drift(quantity)
        if drifts:
            worst = max(drifts, key=lambda d: d.score)
            print(f"max adjacent-phase drift: {worst.score:.4f} "
                  f"(phase {worst.phase_a} → {worst.phase_b})")
        else:
            print("single occupied phase; no adjacent-phase drift")
    return 0


def _cmd_detect_list(args: argparse.Namespace) -> int:
    from repro.detect import get_detector

    rows = []
    for name in DETECTOR_NAMES:
        detector = get_detector(name)
        params = dict(detector.params())
        rows.append(
            {
                "detector": name,
                "class": type(detector).__name__,
                "params": " ".join(f"{k}={v}" for k, v in params.items()),
            }
        )
    print(format_table(rows))
    return 0


def _cmd_detect_run(args: argparse.Namespace) -> int:
    from repro.detect import evaluate_run
    from repro.detect.evaluate import true_change_windows
    from repro.scenarios import analyze_scenario, get_scenario

    sketch = _sketch_from_args(args)
    if args.mode != "sketch" and sketch is not None:
        print("error: --sketch-* options require --mode sketch")
        return 2
    if args.max_latency < 0:
        print(f"error: --max-latency must be >= 0, got {args.max_latency}")
        return 2
    try:
        scenario = get_scenario(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    print(f"scenario {scenario.name!r}: {scenario.n_phases} phases, "
          f"{scenario.n_packets} packets, crossfade {scenario.crossfade_packets}")
    run = analyze_scenario(
        scenario,
        args.nv,
        seed=args.seed,
        backend=args.backend,
        n_workers=args.workers,
        chunk_packets=args.chunk_packets,
        batch_windows=args.batch_windows,
        # argparse choices allow repeats; asking for a detector twice just
        # means "this one", so dedupe rather than error
        detectors=tuple(dict.fromkeys(args.detectors)),
        detect_quantity=args.quantity,
        mode=args.mode,
        sketch=sketch,
        payload_transport=args.payload_transport,
    )
    stats = run.engine_stats
    print(f"engine: backend={stats['backend']} chunks={stats.get('n_chunks')} "
          f"peak buffered packets={stats.get('max_buffered_packets')}"
          + (f" transport={stats['payload_transport']}" if "payload_transport" in stats else ""))
    detection = run.detection
    boundaries = true_change_windows(run.phases.window_phase)
    print(f"{detection.n_windows} windows of N_V = {args.nv} valid packets; "
          f"monitoring {detection.quantity!r}")
    print("true phase-boundary windows: "
          + (" ".join(str(b) for b in boundaries) or "none (single regime)"))
    print("\nalarms per detector:")
    print(format_table(detection.as_rows()))
    print(f"\nevaluation vs ground truth (max latency {args.max_latency} windows):")
    evaluations = evaluate_run(run, max_latency=args.max_latency)
    print(format_table([ev.as_row() for ev in evaluations]))
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaigns import DEFAULT_LEASE_TTL_SECONDS, Campaign, parse_worker_id, run_campaign

    try:
        if args.worker_id is not None:
            worker_index, workers = parse_worker_id(args.worker_id)
            if args.workers not in (1, workers):
                raise ValueError(
                    f"--worker-id {args.worker_id} names a fleet of {workers} "
                    f"but --workers says {args.workers}"
                )
        else:
            worker_index, workers = 1, args.workers
        campaign = Campaign(
            args.name,
            scenarios=tuple(args.scenarios),
            seeds=tuple(args.seeds),
            n_valids=tuple(args.nv),
            quantities=tuple(args.quantities),
            detectors=tuple(dict.fromkeys(args.detectors)),
            modes=tuple(dict.fromkeys(args.modes)),
            sketch=_sketch_from_args(args),
            backends=tuple(args.backends),
            chunk_packets=args.chunk_packets,
        )
    except (KeyError, ValueError) as error:
        print(f"error: {error.args[0]}")
        return 2
    fleet = f" (worker {worker_index}/{workers})" if workers > 1 else ""
    print(f"campaign {campaign.name!r}: {campaign.n_cells} cells "
          f"({len(campaign.unique_keys())} unique results) -> store {args.store}{fleet}")
    try:
        run = run_campaign(
            campaign,
            args.store,
            pool=args.pool,
            pool_workers=args.pool_workers,
            max_cells=args.max_cells,
            recompute=args.recompute,
            cell_retries=args.cell_retries,
            workers=workers,
            worker_index=worker_index,
            lease_ttl=DEFAULT_LEASE_TTL_SECONDS if args.lease_ttl is None else args.lease_ttl,
            heartbeat_seconds=args.heartbeat,
        )
    except ValueError as error:
        print(f"error: {error.args[0]}")
        return 2
    print(format_table(run.as_rows()))
    print(f"\ncomputed {run.n_computed}, cached {run.n_cached}, "
          f"failed {run.n_failed}, skipped {run.n_skipped}"
          + ("" if run.n_skipped == 0 else " — re-run to resume the skipped cells"))
    if run.n_failed:
        for line in run.failure_lines():
            print(line)
        return 1
    return 0


def _open_store_readonly(path: str):
    """Open an existing result store without creating one at a mistyped path."""
    from repro.campaigns import ResultStore

    if not (Path(path) / "store.json").is_file():
        raise KeyError(f"no result store at {path} (create one with 'repro campaign run')")
    return ResultStore(path)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaigns import DEFAULT_LEASE_TTL_SECONDS, fleet_status_rows, lease_rows

    try:
        store = _open_store_readonly(args.store)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    ttl = DEFAULT_LEASE_TTL_SECONDS if args.lease_ttl is None else args.lease_ttl
    names = [args.name] if args.name is not None else list(store.campaign_names())
    if not names:
        print(f"no campaigns recorded in store {store.root}")
        return 0
    try:
        rows = fleet_status_rows(store, names, ttl=ttl)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    print(format_table(rows))
    leases = lease_rows(store, ttl=ttl)
    if leases:
        print("\noutstanding leases:")
        print(format_table(leases))
    if args.check:
        incomplete = [row["campaign"] for row in rows if not row["complete"]]
        problems = []
        if incomplete:
            problems.append(f"incomplete campaign(s): {', '.join(incomplete)}")
        if leases:
            problems.append(f"{len(leases)} outstanding lease(s)")
        if problems:
            print("check failed: " + "; ".join(problems))
            return 1
        print("check passed: all campaigns complete, no outstanding leases")
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaigns import CampaignReport

    try:
        report = CampaignReport.from_store(_open_store_readonly(args.store), args.name)
        rendered = report.render(args.quantity)
    except KeyError as error:
        # unknown store/campaign, or a quantity the campaign never analysed
        print(f"error: {error.args[0]}")
        return 2
    print(rendered)
    if not report.complete:
        print(f"\nnote: {len(report.missing)} cells missing — "
              f"'repro campaign run' with the same grid resumes them")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.config import JobConfigError, load_job_config
    from repro.service.server import DEFAULT_MAX_BATCH_BYTES, serve

    configs = []
    for path in args.job:
        try:
            configs.append(load_job_config(path))
        except JobConfigError as error:
            print(f"error: {error}")
            return 2
    names = [config.name for config in configs]
    if len(set(names)) != len(names):
        print(f"error: duplicate job names across --job files: {sorted(names)}")
        return 2
    if args.store is not None and Path(args.store).is_file():
        print(f"error: --store {args.store} is a file, not a directory")
        return 2
    max_batch = DEFAULT_MAX_BATCH_BYTES if args.max_batch_bytes is None else args.max_batch_bytes
    if max_batch <= 0:
        print(f"error: --max-batch-bytes must be positive, got {max_batch}")
        return 2
    if args.max_buffered_packets is not None and args.max_buffered_packets < 1:
        print(f"error: --max-buffered-packets must be >= 1, got {args.max_buffered_packets}")
        return 2
    wants_durability = (
        args.checkpoint_every is not None
        or args.checkpoint_seconds is not None
        or args.resume
    )
    if wants_durability and args.store is None:
        print("error: --checkpoint-every/--checkpoint-seconds/--resume require --store")
        return 2
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print(f"error: --checkpoint-every must be >= 1, got {args.checkpoint_every}")
        return 2
    if args.checkpoint_seconds is not None and args.checkpoint_seconds <= 0:
        print(f"error: --checkpoint-seconds must be > 0, got {args.checkpoint_seconds}")
        return 2
    try:
        return serve(
            configs,
            host=args.host,
            port=args.port,
            store_root=args.store,
            max_batch_bytes=max_batch,
            max_buffered_packets=args.max_buffered_packets,
            checkpoint_every=args.checkpoint_every,
            checkpoint_seconds=args.checkpoint_seconds,
            resume=args.resume,
        )
    except OSError as error:
        # most commonly EADDRINUSE: another process owns the port
        print(f"error: cannot serve on {args.host}:{args.port}: {error}")
        return 2


def _daemon_request(url: str, *, data: bytes | None = None, timeout: float = 10.0):
    """One JSON request to the daemon: ``(status, body_dict, headers)``.

    HTTP-level errors still carry the daemon's structured JSON body;
    transport failures (connection refused, timeouts) raise ``OSError``.
    Header names in the returned mapping are lower-cased.
    """
    import json
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        url, data=data, method="POST" if data is not None else "GET"
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            headers = {name.lower(): value for name, value in response.headers.items()}
            return response.status, json.loads(response.read().decode("utf-8")), headers
    except urllib.error.HTTPError as error:
        headers = {name.lower(): value for name, value in (error.headers or {}).items()}
        body = error.read().decode("utf-8", errors="replace")
        try:
            return error.code, json.loads(body), headers
        except json.JSONDecodeError:
            return error.code, {"error": {"code": "http", "message": body.strip()}}, headers


def _daemon_request_patient(
    url: str,
    *,
    data: bytes | None = None,
    timeout: float = 10.0,
    retries: int = 0,
    backpressure_deadline: float = 60.0,
):
    """A :func:`_daemon_request` that rides out transient failures.

    Transport failures (connection refused/reset) are retried up to
    *retries* times with capped exponential backoff + jitter — opt-in, so
    the default stays fail-fast.  A 429 back-pressure response is *always*
    honored: the client sleeps at least the daemon's ``Retry-After`` (with
    backoff + jitter on repeats) and retries until *backpressure_deadline*
    seconds have been spent waiting, after which the 429 is returned for
    the caller to surface.
    """
    import random
    import time

    transport_failures = 0
    backpressure_delay = 0.0
    waited = 0.0
    while True:
        try:
            status, body, headers = _daemon_request(url, data=data, timeout=timeout)
        except OSError:
            if transport_failures >= retries:
                raise
            transport_failures += 1
            # 0.25s, 0.5s, 1s, ... capped at 5s, each scaled by 0.5-1.0 jitter
            pause = min(5.0, 0.25 * 2 ** (transport_failures - 1))
            time.sleep(pause * (0.5 + random.random() / 2))
            continue
        if status == 429:
            try:
                retry_after = float(headers.get("retry-after", 1.0))
            except ValueError:
                retry_after = 1.0
            backpressure_delay = min(5.0, max(retry_after, backpressure_delay * 2))
            pause = backpressure_delay * (0.5 + random.random() / 2)
            if waited + pause > backpressure_deadline:
                return status, body, headers
            time.sleep(pause)
            waited += pause
            continue
        return status, body, headers


def _daemon_error_line(status: int, body: dict) -> str:
    error = body.get("error", {}) if isinstance(body, dict) else {}
    code = error.get("code", "http")
    message = error.get("message", f"daemon replied with status {status}")
    return f"error: daemon rejected the request ({code}): {message}"


def _cmd_jobs_submit(args: argparse.Namespace) -> int:
    from repro.service.config import JobConfigError, load_job_config

    try:
        config = load_job_config(args.config)
    except JobConfigError as error:
        print(f"error: {error}")
        return 2
    import json

    payload = json.dumps(config.as_dict()).encode("utf-8")
    try:
        status, body, _headers = _daemon_request_patient(
            f"{args.url.rstrip('/')}/jobs", data=payload, retries=args.retries
        )
    except OSError as error:
        print(f"error: cannot reach daemon at {args.url}: {error}")
        return 2
    if status != 200:
        print(_daemon_error_line(status, body))
        return 1
    print(f"submitted job {body['job']!r} (config {body['config_hash'][:12]})")
    return 0


def _cmd_jobs_status(args: argparse.Namespace) -> int:
    import time

    if args.min_windows is not None and args.name is None:
        print("error: --min-windows requires a job name")
        return 2
    base = args.url.rstrip("/")
    url = f"{base}/status" if args.name is None else f"{base}/status/{args.name}"
    deadline = time.monotonic() + args.timeout
    while True:
        try:
            status, body, _headers = _daemon_request(url)
        except OSError as error:
            print(f"error: cannot reach daemon at {args.url}: {error}")
            return 2
        if status != 200:
            print(_daemon_error_line(status, body))
            return 1
        if args.min_windows is None:
            break
        if body.get("windows_folded", 0) >= args.min_windows:
            break
        if time.monotonic() >= deadline:
            print(f"error: job {args.name!r} reached only "
                  f"{body.get('windows_folded', 0)}/{args.min_windows} windows "
                  f"within {args.timeout:.0f}s")
            return 1
        time.sleep(0.1)
    entries = body["jobs"] if args.name is None else [body]
    if not entries:
        print("no jobs registered")
        return 0
    rows = [
        {
            "job": entry["name"],
            "windows": entry["windows_folded"],
            "buffered": entry["packets_buffered"],
            "alarms": entry["alarms_raised"],
            "errors": entry["errors"],
            "uptime_s": entry["uptime_seconds"],
            "config": entry["config_hash"][:12],
        }
        for entry in entries
    ]
    print(format_table(rows))
    return 0


def _cmd_jobs_feed(args: argparse.Namespace) -> int:
    import json

    from repro.scenarios import get_scenario
    from repro.scenarios.source import ScenarioTraceSource

    try:
        scenario = get_scenario(args.scenario)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    if args.batch_packets <= 0:
        print(f"error: --batch-packets must be positive, got {args.batch_packets}")
        return 2
    source = ScenarioTraceSource(scenario, seed=args.seed, chunk_packets=args.batch_packets)
    base = args.url.rstrip("/")
    batches = replayed = windows = 0
    # each batch carries a deterministic sequence number (its 1-based index
    # in the scenario stream), so re-running the same feed after a daemon
    # crash replays from seq 1 and every already-acked prefix batch is a
    # duplicate no-op on the server — idempotent crash recovery
    for seq, chunk in enumerate(source, start=1):
        packets = chunk.packets
        line = json.dumps(
            {
                "src": packets["src"].tolist(),
                "dst": packets["dst"].tolist(),
                "time": packets["time"].tolist(),
                "size": packets["size"].tolist(),
                "valid": packets["valid"].tolist(),
            }
        )
        try:
            status, body, _headers = _daemon_request_patient(
                f"{base}/ingest/{args.name}?seq={seq}",
                data=(line + "\n").encode("utf-8"),
                retries=args.retries,
            )
        except OSError as error:
            print(f"error: cannot reach daemon at {args.url}: {error}")
            return 2
        if status != 200:
            print(_daemon_error_line(status, body))
            return 1
        batches += 1
        if body.get("duplicate"):
            replayed += 1
        windows = body["windows_folded"]
    skipped = f", {replayed} already acked" if replayed else ""
    print(f"fed scenario {scenario.name!r} (seed {args.seed}) to job {args.name!r}: "
          f"{batches} batches{skipped}, {windows} windows folded")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
