"""Setuptools entry point.

The package version has a single source of truth — ``__version__`` in
``src/repro/__init__.py`` (what ``repro --version`` prints and what the
docs footer shows) — read here textually so building a wheel never needs
the package's runtime dependencies importable.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Extract ``__version__`` from the package without importing it."""
    init = Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(r'^__version__ = "([^"]+)"', init.read_text(encoding="utf-8"), re.MULTILINE)
    if not match:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=read_version(),
    description=(
        "Reproduction of 'Hybrid Power-Law Models of Network Traffic' "
        "grown into a streaming traffic-analysis system"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
