#!/usr/bin/env python
"""Docstring-coverage gate (a dependency-free stand-in for ``interrogate``).

Counts docstrings on modules, public classes, and public functions/methods
(top-level and class-level defs whose names do not start with ``_``) across
a source tree, prints per-file coverage, and exits non-zero when total
coverage falls below ``--fail-under``.  CI runs the real ``interrogate``
when available; this tool keeps the same gate enforceable offline through
``tests/test_docstrings.py``.

Usage: ``python tools/check_docstrings.py [--fail-under 90] [path ...]``
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

__all__ = ["collect_file", "coverage", "main"]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def collect_file(path: Path) -> list[tuple[str, bool]]:
    """``(qualified_name, has_docstring)`` for every checked object in *path*."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    entries: list[tuple[str, bool]] = [(f"{path}", ast.get_docstring(tree) is not None)]

    def visit(nodes, prefix: str) -> None:
        for node in nodes:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name):
                    entries.append(
                        (f"{prefix}{node.name}", ast.get_docstring(node) is not None)
                    )
            elif isinstance(node, ast.ClassDef):
                if _is_public(node.name):
                    entries.append(
                        (f"{prefix}{node.name}", ast.get_docstring(node) is not None)
                    )
                    visit(node.body, f"{prefix}{node.name}.")

    visit(tree.body, f"{path}::")
    return entries


def coverage(paths: list[Path]) -> tuple[float, list[tuple[str, bool]]]:
    """Total coverage percentage and the per-object results for *paths*."""
    entries: list[tuple[str, bool]] = []
    for root in paths:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            entries.extend(collect_file(file))
    if not entries:
        return 100.0, entries
    covered = sum(1 for _, has in entries if has)
    return 100.0 * covered / len(entries), entries


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*", default=["src/repro"], help="files or directories")
    parser.add_argument("--fail-under", type=float, default=90.0,
                        help="minimum acceptable total coverage percentage")
    parser.add_argument("--verbose", action="store_true",
                        help="list every undocumented object")
    args = parser.parse_args(argv)

    total, entries = coverage([Path(p) for p in args.paths])
    missing = [name for name, has in entries if not has]
    if args.verbose or total < args.fail_under:
        for name in missing:
            print(f"missing docstring: {name}")
    print(f"docstring coverage: {total:.1f}% "
          f"({len(entries) - len(missing)}/{len(entries)} objects documented)")
    if total < args.fail_under:
        print(f"FAILED: coverage {total:.1f}% is below --fail-under {args.fail_under}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
