#!/usr/bin/env python
"""Guard the committed ``BENCH_*.json`` artifacts against silent regressions.

Re-running a benchmark rewrites its artifact in place; this tool compares
the freshly written files against a committed baseline (``git show
<ref>:<name>`` by default) and fails when any timing regressed by more than
``--max-regression``×.  Comparisons are only meaningful on the machine the
baseline was recorded on, so when the machine metadata differs (another
CPU budget, platform, or library stack — e.g. a different ``usable_cpus``)
the artifact is **skipped with a reason**, never failed: CI runners and
laptops must not flunk numbers a different box recorded.

One class of artifact is refused outright (still a skip, but a loud one):
an artifact that claims a parallel speedup while its own machine block says
``usable_cpus`` ≤ 1.  A one-CPU box cannot demonstrate parallel scaling —
whatever its timings say is scheduling noise — so such numbers are never
treated as a baseline or as evidence.

Usage::

    # after re-running benchmarks, compare against the committed artifacts
    python tools/check_bench.py
    # explicit files / different baseline ref / tighter gate
    python tools/check_bench.py BENCH_sketch.json --baseline-ref HEAD~1 --max-regression 1.5

Exit status: 0 when nothing regressed (skips included), 1 on regression,
2 on usage errors.  New artifacts with no committed baseline are skipped.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Iterator, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: machine-metadata fields that must match for timings to be comparable;
#: ``timing`` (the measurement protocol) is compared too — best-of-3 vs
#: single-shot numbers are different quantities, not a regression.
MACHINE_FIELDS = ("cpu_count", "usable_cpus", "platform", "machine", "python", "numpy", "timing")


def iter_timings(obj, prefix: str = "") -> Iterator[Tuple[str, float]]:
    """Yield every ``(path, value)`` timing leaf (keys containing ``seconds``)."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (int, float)) and "seconds" in str(key):
                yield path, float(value)
            else:
                yield from iter_timings(value, path)
    elif isinstance(obj, list):
        for index, value in enumerate(obj):
            yield from iter_timings(value, f"{prefix}[{index}]")


def parallel_speedup_claims(obj, prefix: str = "", inside: bool = False) -> Iterator[Tuple[str, float]]:
    """Yield every non-serial speedup leaf under any ``speedup_vs_serial`` key."""
    if isinstance(obj, dict):
        for key, value in obj.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            if inside and isinstance(value, (int, float)) and key != "serial":
                yield path, float(value)
            else:
                yield from parallel_speedup_claims(value, path, inside or key == "speedup_vs_serial")


def parallel_evidence_refusal(fresh: dict) -> str | None:
    """Why this artifact must not count as parallel-speedup evidence, or None.

    Fires when the artifact claims a parallel case beat serial (beyond
    timing noise) while recorded with ``usable_cpus`` ≤ 1.
    """
    machine = fresh.get("machine") or {}
    usable = machine.get("usable_cpus")
    if not isinstance(usable, int) or usable > 1:
        return None
    claims = [(path, value) for path, value in parallel_speedup_claims(fresh) if value > 1.05]
    if not claims:
        return None
    path, value = max(claims, key=lambda claim: claim[1])
    return (
        f"REFUSED as parallel evidence: claims {value:.2f}x at {path} but was recorded "
        f"with usable_cpus={usable} — a one-CPU box cannot demonstrate parallel "
        "speedup; re-record the artifact on a multi-core machine"
    )


def machine_mismatch(fresh: dict, baseline: dict) -> str | None:
    """A human-readable reason the two artifacts are not comparable, or None."""
    fresh_machine = fresh.get("machine") or {}
    base_machine = baseline.get("machine") or {}
    for field in MACHINE_FIELDS:
        mine, theirs = fresh_machine.get(field), base_machine.get(field)
        if mine != theirs:
            return f"machine metadata differs ({field}: {mine!r} vs baseline {theirs!r})"
    return None


def committed_baseline(name: str, ref: str) -> dict | None:
    """The artifact as committed at *ref*, or ``None`` when absent there."""
    result = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except ValueError:
        return None


def check_artifact(path: Path, ref: str, max_regression: float) -> Tuple[str, list[str]]:
    """Compare one artifact; returns ``(status, messages)``.

    *status* is ``"ok"``, ``"skip"`` or ``"fail"``; messages explain skips
    and list each regressed timing.
    """
    fresh = json.loads(path.read_text(encoding="utf-8"))
    refusal = parallel_evidence_refusal(fresh)
    if refusal is not None:
        return "skip", [refusal]
    baseline = committed_baseline(path.name, ref)
    if baseline is None:
        return "skip", [f"no committed baseline at {ref} (new artifact?)"]
    reason = machine_mismatch(fresh, baseline)
    if reason is not None:
        return "skip", [reason]
    base_timings = dict(iter_timings(baseline))
    regressions = []
    for metric, value in iter_timings(fresh):
        base = base_timings.get(metric)
        if base is None or base <= 0.0:
            continue  # new metric, or too fast to gate meaningfully
        ratio = value / base
        if ratio > max_regression:
            regressions.append(
                f"{metric}: {value:.4f}s vs baseline {base:.4f}s ({ratio:.2f}x)"
            )
    if regressions:
        return "fail", regressions
    matched = sum(1 for metric in iter_timings(fresh) if metric[0] in base_timings)
    return "ok", [f"{matched} timings within {max_regression:.2f}x of {ref}"]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="*",
                        help="BENCH_*.json files to check (default: all in the repo root)")
    parser.add_argument("--baseline-ref", default="HEAD",
                        help="git ref holding the committed baselines (default: HEAD)")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="fail when any timing exceeds baseline by this factor "
                             "(default: 2.0 — loose on purpose; wall clocks are noisy)")
    args = parser.parse_args(argv)
    if args.max_regression <= 1.0:
        parser.error("--max-regression must be > 1.0")

    paths = [Path(a) for a in args.artifacts] or sorted(REPO_ROOT.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json artifacts found")
        return 2
    failed = False
    for path in paths:
        if not path.is_file():
            print(f"error: {path} does not exist")
            return 2
        status, messages = check_artifact(path, args.baseline_ref, args.max_regression)
        print(f"[{status.upper():4s}] {path.name}")
        for message in messages:
            print(f"       {message}")
        failed = failed or status == "fail"
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
